"""Derivations over exported traces: one source of truth for figures.

Every helper here consumes the Chrome trace_event document produced by
:func:`repro.trace.export.build_chrome_trace` (as a dict or a loaded
JSON file) and reconstructs the quantities the experiment modules
otherwise read from end-of-run stats:

- :func:`wg_state_transitions` — the Figure 6 per-WG state timelines
  (what :mod:`repro.experiments.timeline` renders);
- :func:`atomic_count` / :func:`wait_efficiency` — the Figure 9
  dynamic-atomic-count metric (requires the ``mem`` category);
- :func:`cp_structure_bytes` — the Figure 13 CP data-structure peaks
  (requires the ``sync`` and ``cp`` categories);
- :func:`notify_breakdown` / :func:`retry_breakdown` — resume-cause and
  retry-timer-cause histograms.

Aggregate counts and counter peaks come from the trace's ``awg``
sidecar, which is exact even when the bounded event ring dropped
detail records.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.trace.tracer import WG_TRACK_PREFIX


class TraceDeriveError(ValueError):
    """The trace is missing a category the derivation needs."""


def _sidecar(trace: Dict[str, Any]) -> Dict[str, Any]:
    try:
        return trace["awg"]
    except (TypeError, KeyError):
        raise TraceDeriveError(
            "not a repro trace: missing the 'awg' sidecar "
            "(was this exported by repro.trace.export?)"
        ) from None


def _require(trace: Dict[str, Any], category: str, what: str) -> None:
    if category not in _sidecar(trace).get("categories", ()):
        raise TraceDeriveError(
            f"deriving {what} needs the {category!r} trace category; "
            f"this trace recorded {_sidecar(trace).get('categories')}"
        )


def counts(trace: Dict[str, Any]) -> Dict[str, int]:
    """Exact ``<cat>.<name>`` occurrence counts."""
    return dict(_sidecar(trace)["counts"])


def counter_peaks(trace: Dict[str, Any]) -> Dict[str, int]:
    """High-water marks of every sampled occupancy counter."""
    return dict(_sidecar(trace)["counterPeaks"])


def thread_names(trace: Dict[str, Any]) -> Dict[int, str]:
    """tid -> track name, from the trace's metadata events."""
    return {
        ev["tid"]: ev["args"]["name"]
        for ev in trace["traceEvents"]
        if ev.get("ph") == "M" and ev.get("name") == "thread_name"
    }


# ----------------------------------------------------------------------
# Figure 6: WG state timelines
# ----------------------------------------------------------------------
def wg_state_transitions(
    trace: Dict[str, Any]
) -> List[Tuple[int, int, str]]:
    """(cycle, wg_id, state_name) transitions, in time order — the same
    triples :attr:`GPU.state_trace` exposes, recovered from the export."""
    _require(trace, "wg", "WG state timelines")
    tracks = thread_names(trace)
    out = []
    for ev in trace["traceEvents"]:
        if ev.get("ph") != "X":
            continue
        track = tracks.get(ev["tid"], "")
        if not track.startswith(WG_TRACK_PREFIX):
            continue
        out.append((ev["ts"], int(track[len(WG_TRACK_PREFIX):]), ev["name"]))
    # exports are (ts, seq)-sorted already; keep the guarantee explicit
    return sorted(out, key=lambda t: t[0])


# ----------------------------------------------------------------------
# Figure 9: wait efficiency (dynamic atomic counts)
# ----------------------------------------------------------------------
def atomic_count(trace: Dict[str, Any]) -> int:
    """Dynamic atomics issued to the L2 over the run."""
    _require(trace, "mem", "atomic counts")
    return int(counts(trace).get("mem.atomic", 0))


def wait_efficiency(
    traces: Dict[str, Dict[str, Any]], oracle: str = "MinResume"
) -> Dict[str, float]:
    """Figure 9's metric from traces alone: per-policy atomic counts
    normalized to the MinResume oracle. ``traces`` maps policy name to
    that policy's exported trace of the same (benchmark, scenario)."""
    if oracle not in traces:
        raise TraceDeriveError(f"need an {oracle!r} trace to normalize to")
    base = max(1, atomic_count(traces[oracle]))
    return {name: atomic_count(t) / base for name, t in traces.items()}


# ----------------------------------------------------------------------
# Figure 13: CP data-structure sizes
# ----------------------------------------------------------------------
def cp_structure_bytes(trace: Dict[str, Any]) -> Dict[str, int]:
    """Peak bytes of the CP's scheduling structures, from counter peaks
    (mirrors :meth:`CommandProcessor.datastructure_bytes`)."""
    from repro.gpu.command_processor import (
        CONDITION_ENTRY_BYTES,
        MONITORED_ADDR_BYTES,
        MONITOR_TABLE_BYTES,
        WAITING_WG_BYTES,
    )

    _require(trace, "sync", "CP structure sizes")
    _require(trace, "cp", "CP structure sizes")
    peaks = counter_peaks(trace)
    conditions = (
        peaks.get("syncmon.conditions", 0)
        + peaks.get("cp.spilled_conditions", 0)
    )
    return {
        "waiting_conditions": conditions * CONDITION_ENTRY_BYTES,
        "monitored_addresses":
            peaks.get("cp.monitored_addrs", 0) * MONITORED_ADDR_BYTES,
        "waiting_wgs": peaks.get("cp.waiting_wgs", 0) * WAITING_WG_BYTES,
        "monitor_table":
            peaks.get("log.occupancy", 0) * MONITOR_TABLE_BYTES,
    }


# ----------------------------------------------------------------------
# cause histograms
# ----------------------------------------------------------------------
def _prefixed(trace: Dict[str, Any], prefix: str) -> Dict[str, int]:
    return {
        key[len(prefix):]: n
        for key, n in counts(trace).items()
        if key.startswith(prefix)
    }


def notify_breakdown(trace: Dict[str, Any]) -> Dict[str, int]:
    """Resume notifications by cause (condition-met, sporadic,
    straggler-timeout, cp-spilled, ...)."""
    _require(trace, "sync", "the notify breakdown")
    return _prefixed(trace, "sync.resume:")


def retry_breakdown(trace: Dict[str, Any]) -> Dict[str, int]:
    """Retry-timer expiries by deadline source (interval, straggler,
    backstop) — the vulnerable-wait signal the differential suite
    asserts on."""
    _require(trace, "wg", "the retry breakdown")
    return _prefixed(trace, "wg.retry:")

"""The event tracer: bounded ring of typed events + exact aggregate counts.

Design constraints (the tentpole's acceptance criteria):

- **Never perturbs the simulation.** The tracer schedules no events,
  consumes no randomness and touches no simulated state; timestamps are
  read from the engine clock. A traced run and an untraced run of the
  same seed are cycle-identical.
- **Zero-cost when off.** Call sites guard on ``gpu.tracer is None``;
  category filtering inside the tracer is one frozenset lookup.
- **Bit-deterministic.** Events carry a global sequence number; exports
  sort by ``(ts, seq)`` so two runs of the same seed produce
  byte-identical trace files.
- **Bounded.** The ring holds ``TraceConfig.buffer_size`` events;
  overflow drops the oldest and increments ``dropped``. The per-event
  ``counts`` dict and counter peaks stay exact regardless.

Event kinds map onto Chrome ``trace_event`` phases: spans → ``"X"``
(complete events), instants → ``"i"``, counter samples → ``"C"``.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine
    from repro.sim.stats import StatRegistry
    from repro.trace.config import TraceConfig

#: WG tracks are named ``wg/<id>``; everything else is a singleton track
WG_TRACK_PREFIX = "wg/"


def wg_track(wg_id: int) -> str:
    return f"{WG_TRACK_PREFIX}{wg_id}"


class Tracer:
    """Records spans/instants/counters for one GPU run."""

    def __init__(
        self,
        env: "Engine",
        config: "TraceConfig",
        stats: Optional["StatRegistry"] = None,
    ) -> None:
        self.env = env
        self.config = config
        self.categories = frozenset(config.categories)
        self.stats = stats
        self._ring: Deque[Dict[str, Any]] = deque(maxlen=config.buffer_size)
        #: open spans: track -> {"cat","name","ts","seq","args"}
        self._open: Dict[str, Dict[str, Any]] = {}
        self._seq = 0
        #: exact "<cat>.<name>" occurrence counts (never dropped)
        self.counts: Dict[str, int] = {}
        #: high-water marks of every sampled counter
        self.counter_peaks: Dict[str, int] = {}
        self.recorded = 0
        self.dropped = 0
        self.finished = False

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def wants(self, cat: str) -> bool:
        return cat in self.categories

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _bump(self, cat: str, name: str) -> None:
        key = f"{cat}.{name}"
        self.counts[key] = self.counts.get(key, 0) + 1
        if self.stats is not None:
            self.stats.counter(f"trace.{cat}").incr()

    def _push(self, record: Dict[str, Any]) -> None:
        ring = self._ring
        if ring.maxlen is not None and len(ring) >= ring.maxlen:
            self.dropped += 1
        ring.append(record)
        self.recorded += 1

    def instant(self, cat: str, name: str, track: str = "sim", **args) -> None:
        """A one-shot occurrence (Chrome phase ``"i"``)."""
        if cat not in self.categories:
            return
        self._bump(cat, name)
        self._push({
            "ph": "i", "cat": cat, "name": name, "ts": self.env.now,
            "track": track, "args": args, "seq": self._next_seq(),
        })

    def count(self, cat: str, name: str, n: int = 1) -> None:
        """Aggregate-only tick for high-frequency events (memory ops):
        exact counts with no per-event ring record."""
        if cat not in self.categories:
            return
        key = f"{cat}.{name}"
        self.counts[key] = self.counts.get(key, 0) + n
        if self.stats is not None:
            self.stats.counter(f"trace.{cat}").incr(n)

    def counter(self, cat: str, name: str, value: int) -> None:
        """Sample a named occupancy counter (Chrome phase ``"C"``)."""
        if cat not in self.categories:
            return
        self._bump(cat, name)
        prev = self.counter_peaks.get(name)
        if prev is None or value > prev:
            self.counter_peaks[name] = value
        self._push({
            "ph": "C", "cat": cat, "name": name, "ts": self.env.now,
            "track": name, "args": {"value": value},
            "seq": self._next_seq(),
        })

    def set_span(self, cat: str, track: str, name: str, **args) -> None:
        """Enter a new span on ``track``, closing the previous one at the
        current cycle. Per-track spans are therefore contiguous and never
        overlap (the per-WG state-machine invariant)."""
        if cat not in self.categories:
            return
        self._close(track)
        self._bump(cat, name)
        self._open[track] = {
            "cat": cat, "name": name, "ts": self.env.now,
            "args": args, "seq": self._next_seq(),
        }

    def end_span(self, track: str) -> None:
        self._close(track)

    def _close(self, track: str) -> None:
        span = self._open.pop(track, None)
        if span is None:
            return
        self._push({
            "ph": "X", "cat": span["cat"], "name": span["name"],
            "ts": span["ts"], "dur": self.env.now - span["ts"],
            "track": track, "args": span["args"], "seq": span["seq"],
        })

    def finish(self) -> None:
        """Close every open span at the current cycle (end of run)."""
        for track in sorted(self._open):
            self._close(track)
        self.finished = True

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def events(self) -> List[Dict[str, Any]]:
        """All retained events (plus still-open spans as zero-ended
        snapshots), sorted by ``(ts, seq)``."""
        out = list(self._ring)
        now = self.env.now
        for track, span in self._open.items():
            out.append({
                "ph": "X", "cat": span["cat"], "name": span["name"],
                "ts": span["ts"], "dur": now - span["ts"],
                "track": track, "args": span["args"], "seq": span["seq"],
            })
        out.sort(key=lambda r: (r["ts"], r["seq"]))
        return out

    def wg_transitions(self) -> List[Tuple[int, int, str]]:
        """(cycle, wg_id, state_name) transitions derived from the "wg"
        span stream — the legacy ``GPU.state_trace`` view."""
        out = []
        for rec in self.events():
            if rec["ph"] == "X" and rec["track"].startswith(WG_TRACK_PREFIX):
                out.append(
                    (rec["ts"], int(rec["track"][len(WG_TRACK_PREFIX):]),
                     rec["name"])
                )
        return out

    def metrics(self) -> Dict[str, float]:
        """Flat metrics snapshot of the observability layer itself."""
        out: Dict[str, float] = {
            "trace.events": float(self.recorded),
            "trace.dropped": float(self.dropped),
        }
        for key in sorted(self.counts):
            out[f"trace.count.{key}"] = float(self.counts[key])
        for key in sorted(self.counter_peaks):
            out[f"trace.peak.{key}"] = float(self.counter_peaks[key])
        return out

    def export_chrome(self, label: Optional[str] = None) -> Dict[str, Any]:
        """Chrome/Perfetto ``trace_event`` JSON document (as a dict).

        Timestamps are raw core cycles used as trace microseconds
        (1 ts == 1 cycle) so exports are integer-exact and
        bit-deterministic; ``otherData.clock`` records the convention.
        """
        from repro.trace.export import build_chrome_trace

        return build_chrome_trace(self, label=label)

"""Structured execution tracing and metrics export (:mod:`repro.trace`).

A :class:`~repro.trace.tracer.Tracer` is attached to a
:class:`~repro.gpu.gpu.GPU` when :class:`~repro.gpu.config.GPUConfig`
carries a :class:`~repro.trace.config.TraceConfig`. Instrumentation
sites throughout the simulator (dispatcher, work-groups, SyncMon,
Command Processor, preemption, fault injector, memory hierarchy) emit
typed events into a bounded ring buffer:

- **spans** for WG residency: one per state the WG occupies
  (``running``, ``stalled``, ``switched_out``, ...);
- **instants** for one-shot occurrences: dispatches, notifies, resume
  predictions, faults, evictions, retry-timer expiries;
- **counter samples** for occupancy curves: waiting conditions,
  waiting WGs, Monitor Log fill.

When ``GPUConfig.trace`` is None every instrumentation site reduces to
one attribute check (``gpu.tracer is None``) — tracing is zero-cost
when off and never alters simulated timing when on.

Exports: Chrome/Perfetto ``trace_event`` JSON
(:func:`~repro.trace.export.write_chrome_trace`, loadable at
https://ui.perfetto.dev) and a flat metrics snapshot
(:meth:`Tracer.metrics`). :mod:`repro.trace.derive` rebuilds the
Figure 6 state timelines and the Figure 9/13 stat derivations from the
exported trace, making the event stream the single source of truth.
"""

from repro.trace.config import CATEGORIES, TraceConfig
from repro.trace.tracer import Tracer

__all__ = ["CATEGORIES", "TraceConfig", "Tracer"]

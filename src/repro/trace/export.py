"""Chrome/Perfetto ``trace_event`` JSON export and validation.

The emitted document uses the *JSON Array with metadata* flavour of the
trace_event format: ``{"traceEvents": [...], "displayTimeUnit": ...}``.
Span events use phase ``"X"`` (complete), one-shots phase ``"i"``
(thread-scoped instants), occupancy samples phase ``"C"`` (counters),
and per-track names are published through ``"M"`` metadata events —
exactly the subset both ``chrome://tracing`` and https://ui.perfetto.dev
accept. Timestamps are simulated core cycles used as trace microseconds
(1 ts == 1 cycle), keeping exports integer-exact and bit-deterministic.

``python -m repro.trace.export FILE`` validates a trace file against
this schema (used by ``make trace-smoke``).
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.trace.tracer import Tracer

from repro.trace.tracer import WG_TRACK_PREFIX

#: single simulated device = single trace process
PID = 1

_VALID_PHASES = {"X", "i", "C", "M"}


def _track_order(tracks: List[str]) -> List[str]:
    """WG tracks first (numeric order), then the subsystem tracks."""
    wg = sorted(
        (t for t in tracks if t.startswith(WG_TRACK_PREFIX)),
        key=lambda t: int(t[len(WG_TRACK_PREFIX):]),
    )
    other = sorted(t for t in tracks if not t.startswith(WG_TRACK_PREFIX))
    return wg + other


def build_chrome_trace(
    tracer: "Tracer", label: Optional[str] = None
) -> Dict[str, Any]:
    """Render one :class:`Tracer`'s ring into a trace_event document."""
    records = tracer.events()
    tids = {
        track: i + 1
        for i, track in enumerate(_track_order(
            sorted({rec["track"] for rec in records})
        ))
    }

    events: List[Dict[str, Any]] = [{
        "ph": "M", "name": "process_name", "pid": PID, "tid": 0,
        "args": {"name": label or "awg-repro"},
    }]
    for track, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        events.append({
            "ph": "M", "name": "thread_name", "pid": PID, "tid": tid,
            "args": {"name": track},
        })
        events.append({
            "ph": "M", "name": "thread_sort_index", "pid": PID, "tid": tid,
            "args": {"sort_index": tid},
        })

    for rec in records:
        ev: Dict[str, Any] = {
            "ph": rec["ph"], "name": rec["name"], "cat": rec["cat"],
            "ts": rec["ts"], "pid": PID, "tid": tids[rec["track"]],
            "args": rec["args"],
        }
        if rec["ph"] == "X":
            ev["dur"] = rec["dur"]
        elif rec["ph"] == "i":
            ev["s"] = "t"  # thread-scoped instant
        events.append(ev)

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "label": label or "awg-repro",
            "clock": "1 trace microsecond == 1 simulated core cycle",
            "generator": "repro.trace",
        },
        # repro-specific sidecar (ignored by Chrome/Perfetto importers):
        # exact aggregate counts and counter peaks survive ring overflow.
        "awg": {
            "recorded": tracer.recorded,
            "dropped": tracer.dropped,
            "counts": {k: tracer.counts[k] for k in sorted(tracer.counts)},
            "counterPeaks": {
                k: tracer.counter_peaks[k]
                for k in sorted(tracer.counter_peaks)
            },
            "categories": list(tracer.config.categories),
        },
    }


def write_chrome_trace(doc: Dict[str, Any], path) -> None:
    """Serialize deterministically (sorted keys, no float timestamps)."""
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")


# ----------------------------------------------------------------------
# validation (the trace-smoke gate)
# ----------------------------------------------------------------------
def validate_chrome_trace(doc: Any) -> List[str]:
    """Return every way ``doc`` violates the trace_event schema subset we
    emit; an empty list means the file will load in Perfetto."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["top level must be a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a JSON array"]
    if not events:
        problems.append("traceEvents is empty")
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: event must be an object")
            continue
        ph = ev.get("ph")
        if ph not in _VALID_PHASES:
            problems.append(f"{where}: bad phase {ph!r}")
            continue
        if not isinstance(ev.get("name"), str):
            problems.append(f"{where}: missing/non-string name")
        if not isinstance(ev.get("pid"), int):
            problems.append(f"{where}: missing/non-integer pid")
        if not isinstance(ev.get("tid"), int):
            problems.append(f"{where}: missing/non-integer tid")
        if "args" in ev and not isinstance(ev["args"], dict):
            problems.append(f"{where}: args must be an object")
        if ph == "M":
            continue
        ts = ev.get("ts")
        if not isinstance(ts, int) or ts < 0:
            problems.append(f"{where}: ts must be a non-negative integer")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, int) or dur < 0:
                problems.append(
                    f"{where}: X event needs a non-negative integer dur"
                )
        if ph == "i" and ev.get("s") not in (None, "t", "p", "g"):
            problems.append(f"{where}: bad instant scope {ev.get('s')!r}")
        if ph == "C":
            args = ev.get("args")
            if not isinstance(args, dict) or not all(
                isinstance(v, (int, float)) for v in args.values()
            ):
                problems.append(f"{where}: C event args must be numeric")
    return problems


def validate_trace_file(path) -> List[str]:
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        return [f"cannot read {path}: {exc}"]
    return validate_chrome_trace(doc)


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.trace.export",
        description="Validate a Chrome trace_event JSON file",
    )
    parser.add_argument("files", nargs="+", help="trace files to validate")
    opts = parser.parse_args(argv)
    status = 0
    for path in opts.files:
        problems = validate_trace_file(path)
        if problems:
            status = 1
            print(f"{path}: INVALID")
            for problem in problems[:20]:
                print(f"  - {problem}")
            if len(problems) > 20:
                print(f"  ... and {len(problems) - 20} more")
        else:
            with open(path) as fh:
                n = len(json.load(fh)["traceEvents"])
            print(f"{path}: ok ({n} events)")
    return status


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())

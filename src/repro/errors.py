"""Exception hierarchy for the repro package.

Every error raised by the simulator derives from :class:`ReproError` so
callers can catch simulator failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SimulationError(ReproError):
    """The simulation engine was driven into an invalid state."""


class DeadlockError(SimulationError):
    """The progress watchdog declared the workload deadlocked.

    Carries the simulation time at which the deadlock was declared and a
    human-readable diagnosis of the waiting work-groups.
    """

    def __init__(self, message: str, cycle: int = 0):
        super().__init__(message)
        self.cycle = cycle


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class MemoryError_(ReproError):
    """An invalid memory access (unaligned, unallocated, out of range)."""


class DeviceError(ReproError):
    """A kernel performed an illegal device-side operation."""

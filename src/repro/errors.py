"""Exception hierarchy for the repro package.

Every error raised by the simulator derives from :class:`ReproError` so
callers can catch simulator failures without masking programming errors.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SimulationError(ReproError):
    """The simulation engine was driven into an invalid state."""


class DeadlockError(SimulationError):
    """The progress watchdog declared the workload deadlocked (or
    livelocked).

    Beyond the human-readable message it carries a machine-readable
    diagnosis: the cycle at which progress stopped, the watchdog verdict
    (``kind`` is ``"deadlock"`` for no progress events at all,
    ``"livelock"`` for progress events without condition advancement),
    and a per-WG stall report (which condition each unfinished WG waits
    on, how long it has been in its state, and whether it still holds CU
    residency). ``to_dict()`` is what the experiment matrix persists.
    """

    def __init__(
        self,
        message: str,
        cycle: int = 0,
        reason: str = "watchdog",
        kind: str = "deadlock",
        policy: str = "",
        finished: int = 0,
        total: int = 0,
        stall_report: Optional[List[Dict[str, Any]]] = None,
    ):
        super().__init__(message)
        self.cycle = cycle
        self.reason = reason
        self.kind = kind
        self.policy = policy
        self.finished = finished
        self.total = total
        self.stall_report = stall_report or []

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable diagnosis (cacheable / pool-picklable)."""
        return {
            "kind": self.kind,
            "reason": self.reason,
            "cycle": self.cycle,
            "policy": self.policy,
            "finished": self.finished,
            "total": self.total,
            "stalls": self.stall_report,
        }


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class MemoryError_(ReproError):
    """An invalid memory access (unaligned, unallocated, out of range)."""


class DeviceError(ReproError):
    """A kernel performed an illegal device-side operation."""

"""Dynamic synchronization sanitizer: happens-before race detection.

Enabled with :attr:`~repro.gpu.config.GPUConfig.sanitize`. The memory
hierarchy calls in for every plain load/store (attributed to the issuing
WG) and for every atomic executed at the L2 (the serialization point);
the sanitizer maintains:

- a **vector clock** per WG, with release/acquire edges derived from the
  atomics: every atomic *acquires* the address's release clock, and an
  atomic that actually changed the word *releases* the WG's clock into
  it. Correct lock hand-offs and flag publishes therefore order the
  critical-section plain accesses; a WG that bypasses the protocol gets
  no edge and its conflicting accesses are reported.
- a **FastTrack-style shadow word** per plain-accessed address (last
  write epoch + per-WG read epochs) to check conflicting accesses
  against the clocks.
- per-WG **locksets** (maintained by the sync primitives via
  :meth:`on_lock_acquire` / :meth:`on_lock_release`) and the per-address
  Eraser-style candidate intersection, reported alongside each race for
  diagnosis — an empty intersection names the missing lock discipline.

All callbacks run at deterministic engine points, so the race report is
bit-reproducible for a fixed seed. Races are deduplicated per (address,
kind, WG pair) and surfaced both as ``sanitizer.*`` stats and through
:meth:`report` (machine-readable, JSON-serializable).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, FrozenSet, List, Optional, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.gpu import GPU
    from repro.mem.atomics import AtomicResult

#: cap on stored race entries (the counter keeps counting past it)
MAX_RACES = 200


class _Shadow:
    """FastTrack shadow state for one plain-accessed address."""

    __slots__ = ("write", "write_lockset", "reads", "candidate")

    def __init__(self) -> None:
        #: last write epoch (wg, clock component) or None
        self.write: Optional[Tuple[int, int]] = None
        self.write_lockset: FrozenSet[int] = frozenset()
        #: per-WG read epochs since the last write
        self.reads: Dict[int, int] = {}
        #: Eraser candidate lockset: intersection of locks held across
        #: every access to this address (None until the first access)
        self.candidate: Optional[FrozenSet[int]] = None


class SyncSanitizer:
    """Per-GPU dynamic race detector (see module docstring)."""

    def __init__(self, gpu: "GPU") -> None:
        self.gpu = gpu
        #: per-WG vector clocks; each WG's own component starts at 1 so
        #: the zero clock never appears to have observed a real epoch
        self._clocks: Dict[int, Dict[int, int]] = {}
        #: per-address release clocks (written by atomics that changed it)
        self._sync: Dict[int, Dict[int, int]] = {}
        self._shadow: Dict[int, _Shadow] = {}
        self._held: Dict[int, Set[int]] = {}
        self._races: List[Dict[str, Any]] = []
        self._race_keys: Set[Tuple] = set()
        self._lock_errors: List[Dict[str, Any]] = []
        stats = gpu.stats
        self._c_races = stats.counter("sanitizer.races")
        self._c_plain = stats.counter("sanitizer.plain_accesses")
        self._c_sync = stats.counter("sanitizer.sync_ops")
        self._c_lock_errors = stats.counter("sanitizer.lock_errors")

    # -- clocks ---------------------------------------------------------
    def _clock(self, wg: int) -> Dict[int, int]:
        clock = self._clocks.get(wg)
        if clock is None:
            clock = {wg: 1}
            self._clocks[wg] = clock
        return clock

    @staticmethod
    def _join(into: Dict[int, int], other: Dict[int, int]) -> None:
        for wg, t in other.items():
            if into.get(wg, 0) < t:
                into[wg] = t

    # -- synchronization edges (atomics at the L2) ----------------------
    def on_atomic(self, wg: int, addr: int, result: "AtomicResult") -> None:
        """Every atomic acquires; an atomic that changed the word releases."""
        self._c_sync.incr()
        clock = self._clock(wg)
        rel = self._sync.get(addr)
        if rel is not None:
            self._join(clock, rel)
        if result.wrote:
            self._sync[addr] = dict(clock)
            clock[wg] = clock.get(wg, 1) + 1

    # -- plain accesses --------------------------------------------------
    def on_load(self, wg: int, addr: int) -> None:
        self._c_plain.incr()
        clock = self._clock(wg)
        shadow = self._shadow.get(addr)
        if shadow is None:
            shadow = self._shadow[addr] = _Shadow()
        if shadow.write is not None:
            w_wg, w_t = shadow.write
            if w_wg != wg and clock.get(w_wg, 0) < w_t:
                self._record_race(addr, "write-read", w_wg,
                                  shadow.write_lockset, wg)
        shadow.reads[wg] = clock.get(wg, 1)
        self._update_candidate(shadow, wg)

    def on_store(self, wg: int, addr: int) -> None:
        self._c_plain.incr()
        clock = self._clock(wg)
        shadow = self._shadow.get(addr)
        if shadow is None:
            shadow = self._shadow[addr] = _Shadow()
        if shadow.write is not None:
            w_wg, w_t = shadow.write
            if w_wg != wg and clock.get(w_wg, 0) < w_t:
                self._record_race(addr, "write-write", w_wg,
                                  shadow.write_lockset, wg)
        for r_wg, r_t in shadow.reads.items():
            if r_wg != wg and clock.get(r_wg, 0) < r_t:
                self._record_race(addr, "read-write", r_wg, None, wg)
        shadow.write = (wg, clock.get(wg, 1))
        shadow.write_lockset = frozenset(self._held.get(wg, ()))
        shadow.reads.clear()
        self._update_candidate(shadow, wg)

    def _update_candidate(self, shadow: _Shadow, wg: int) -> None:
        held = frozenset(self._held.get(wg, ()))
        if shadow.candidate is None:
            shadow.candidate = held
        else:
            shadow.candidate &= held

    # -- locksets (maintained by the sync primitives) --------------------
    def on_lock_acquire(self, wg: int, lock_addr: int) -> None:
        self._held.setdefault(wg, set()).add(lock_addr)

    def on_lock_release(self, wg: int, lock_addr: int) -> None:
        self._held.get(wg, set()).discard(lock_addr)

    def record_lock_error(self, wg: int, lock_addr: int, kind: str,
                          primitive: str) -> None:
        """A structurally invalid lock operation (double release, release
        without acquire) — recorded even though the primitive also raises."""
        self._c_lock_errors.incr()
        self._lock_errors.append({
            "kind": kind,
            "wg": wg,
            "lock_addr": lock_addr,
            "primitive": primitive,
            "cycle": self.gpu.env.now,
        })

    # -- reporting -------------------------------------------------------
    def _record_race(self, addr: int, kind: str, first_wg: int,
                     first_lockset: Optional[FrozenSet[int]],
                     second_wg: int) -> None:
        self._c_races.incr()
        key = (addr, kind, first_wg, second_wg)
        if key in self._race_keys or len(self._races) >= MAX_RACES:
            return
        self._race_keys.add(key)
        second_held = frozenset(self._held.get(second_wg, ()))
        inter = (first_lockset & second_held
                 if first_lockset is not None else frozenset())
        shadow = self._shadow.get(addr)
        candidate = shadow.candidate if shadow is not None else None
        self._races.append({
            "addr": addr,
            "kind": kind,
            "first_wg": first_wg,
            "second_wg": second_wg,
            "first_lockset": sorted(first_lockset or ()),
            "second_lockset": sorted(second_held),
            "lockset_intersection": sorted(inter),
            "candidate_lockset": sorted(candidate or ()),
            "cycle": self.gpu.env.now,
            "hint": "no happens-before edge orders these accesses; hold a "
                    "common lock around both, or publish through an atomic",
        })

    @property
    def race_count(self) -> int:
        return self._c_races.value

    @property
    def races(self) -> List[Dict[str, Any]]:
        return list(self._races)

    @property
    def lock_errors(self) -> List[Dict[str, Any]]:
        return list(self._lock_errors)

    def report(self) -> Dict[str, Any]:
        """Machine-readable run summary (JSON-serializable)."""
        return {
            "race_count": self._c_races.value,
            "races": self.races,
            "lock_errors": self.lock_errors,
            "addresses_tracked": len(self._shadow),
            "plain_accesses": self._c_plain.value,
            "sync_ops": self._c_sync.value,
        }

    def render(self) -> str:
        lines = [
            f"sanitizer: {self._c_plain.value} plain accesses over "
            f"{len(self._shadow)} addresses, {self._c_sync.value} sync ops"
        ]
        if not self._races and not self._lock_errors:
            lines.append("sanitizer: no races detected")
        for race in self._races:
            lines.append(
                f"RACE [{race['kind']}] @0x{race['addr']:x}: "
                f"WG{race['first_wg']} vs WG{race['second_wg']} "
                f"(cycle {race['cycle']}, lockset ∩ = "
                f"{race['lockset_intersection'] or '∅'})"
            )
        for err in self._lock_errors:
            lines.append(
                f"LOCK-ERROR [{err['kind']}] {err['primitive']}"
                f"@0x{err['lock_addr']:x} by WG{err['wg']} "
                f"(cycle {err['cycle']})"
            )
        return "\n".join(lines)

"""The kernel-generator DSL surface shared by every static pass.

Kernels in this repository are Python generators programmed against
:class:`~repro.gpu.device_api.WavefrontCtx`; every device operation and
every sync-primitive method (``mutex.acquire(ctx)``, ``barrier.arrive(
ctx, ...)``) is itself a generator that must be driven with ``yield
from``. This module holds the vocabulary of that DSL — which ctx methods
are generators, which are waits, which are polls — plus the
:class:`KernelFunction` model that the CFG builder (:mod:`.cfg`), the
dataflow passes (:mod:`.dataflow`) and the lint rules (:mod:`.rules`)
all analyze.

Nothing here imports the simulator: the whole analysis layer runs on
stdlib ``ast`` alone so it can lint a checkout without executing it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

# -- the device DSL surface ---------------------------------------------------

#: ctx methods that return generators and must be driven with ``yield from``.
DEVICE_GEN_OPS = frozenset({
    "compute", "load", "store", "lds_read", "lds_write", "s_sleep",
    "syncthreads", "atomic", "atomic_load", "atomic_add", "atomic_sub",
    "atomic_exch", "atomic_store", "atomic_cas", "sync_wait",
    "acquire_test_and_set", "wait_for_value",
})

#: ctx methods that are plain calls (no generator, no ``yield from``).
CTX_PLAIN_OPS = frozenset({"progress"})

#: the blessed waiting entry points — lowered by the active policy.
WAIT_OPS = frozenset({"sync_wait", "wait_for_value", "acquire_test_and_set"})

#: ctx reads a loop can poll on (the busy-wait ingredients).
POLL_OPS = frozenset({
    "load", "atomic", "atomic_load", "atomic_add", "atomic_sub",
    "atomic_exch", "atomic_cas",
})

#: read-modify-write ops whose failure + separate wait re-opens §IV.C.
RMW_OPS = frozenset({"atomic_add", "atomic_sub", "atomic_exch", "atomic_cas"})

#: ctx ops that write memory (the update side of a wait-for edge).
WRITE_OPS = frozenset({
    "store", "atomic_add", "atomic_sub", "atomic_exch", "atomic_store",
    "atomic_cas", "atomic",
})

#: sync-primitive methods that suspend/advance execution when given a ctx.
SYNC_ENTRY_METHODS = frozenset({"acquire", "arrive", "join", "group_size"})

#: sync-primitive methods that open / close a critical section.
LOCK_ACQUIRE_METHODS = frozenset({"acquire"})
LOCK_RELEASE_METHODS = frozenset({"release"})

#: identifiers that make a condition wavefront-divergent (syncthreads is
#: WG-local, so only wavefront-level identity matters — not wg_id).
DIVERGENT_NAMES = frozenset({"is_master", "wf_id"})

#: identifiers that mark an address expression as WG-private.
PRIVATE_NAMES = frozenset({"grid_index", "wg_id", "wf_id"})


# -- kernel-function model ----------------------------------------------------

def _annotation_mentions_ctx(node: ast.arg) -> bool:
    ann = node.annotation
    if ann is None:
        return False
    try:
        text = ast.unparse(ann)
    except Exception:  # pragma: no cover - malformed annotation
        return False
    return "WavefrontCtx" in text


def _ctx_param_names(fn: ast.FunctionDef) -> Set[str]:
    names: Set[str] = set()
    args = fn.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        if arg.arg == "ctx" or _annotation_mentions_ctx(arg):
            names.add(arg.arg)
    return names


@dataclass
class KernelFunction:
    """One function that executes device code, with its own AST subset.

    ``nodes`` excludes the subtrees of nested function definitions — each
    nested ``def`` is analyzed as its own :class:`KernelFunction`.
    ``qualname`` carries the enclosing class / function names so the
    progress pass can resolve ``SpinMutex.acquire`` or
    ``make_mutex_body.body`` by name.
    """

    node: ast.FunctionDef
    path: str
    ctx_names: Set[str]
    nodes: List[ast.AST] = field(default_factory=list)
    parents: Dict[int, ast.AST] = field(default_factory=dict)
    qualname: str = ""

    @property
    def name(self) -> str:
        return self.node.name

    def parent_chain(self, node: ast.AST) -> Iterator[ast.AST]:
        """Ancestors of ``node`` up to (and excluding) the function def."""
        cur = self.parents.get(id(node))
        while cur is not None and cur is not self.node:
            yield cur
            cur = self.parents.get(id(cur))


def _collect_own(fn: ast.FunctionDef) -> Tuple[List[ast.AST], Dict[int, ast.AST]]:
    """Walk ``fn`` without descending into nested function definitions."""
    nodes: List[ast.AST] = []
    parents: Dict[int, ast.AST] = {}
    stack: List[ast.AST] = [fn]
    while stack:
        cur = stack.pop()
        for child in ast.iter_child_nodes(cur):
            parents[id(child)] = cur
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                continue
            nodes.append(child)
            stack.append(child)
    return nodes, parents


def _qualnames(tree: ast.Module) -> Dict[int, str]:
    """id(FunctionDef) -> dotted qualname through classes and functions."""
    out: Dict[int, str] = {}

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qn = f"{prefix}{child.name}"
                out[id(child)] = qn
                visit(child, qn + ".")
            elif isinstance(child, ast.ClassDef):
                visit(child, f"{prefix}{child.name}.")
            else:
                visit(child, prefix)

    visit(tree, "")
    return out


def iter_kernel_functions(tree: ast.Module, path: str) -> Iterator[KernelFunction]:
    """Every function in ``tree`` that looks like kernel/device code."""
    qualnames = _qualnames(tree)
    for node in ast.walk(tree):
        if not isinstance(node, ast.FunctionDef):
            continue
        ctx_names = _ctx_param_names(node)
        nodes, parents = _collect_own(node)
        if not ctx_names:
            # Fall back: closures over an outer `ctx` name still count.
            if not any(isinstance(n, ast.Name) and n.id == "ctx" for n in nodes):
                continue
            ctx_names = {"ctx"}
        yield KernelFunction(node=node, path=path, ctx_names=ctx_names,
                             nodes=nodes, parents=parents,
                             qualname=qualnames.get(id(node), node.name))


# -- device-call classification -----------------------------------------------

def _is_ctx_name(node: ast.AST, ctx_names: Set[str]) -> bool:
    return isinstance(node, ast.Name) and node.id in ctx_names


def classify_call(call: ast.Call, ctx_names: Set[str]) -> Optional[Tuple[str, str]]:
    """Classify a call as a device-op generator.

    Returns ``("ctx", op)`` for ``ctx.<device op>(...)``, ``("sync",
    method)`` for a call that passes a bare ctx argument (sync-primitive
    methods and kernel helper generators), or ``None`` for host code.
    """
    func = call.func
    if isinstance(func, ast.Attribute) and _is_ctx_name(func.value, ctx_names):
        if func.attr in DEVICE_GEN_OPS:
            return ("ctx", func.attr)
        return None  # ctx.progress(...) and properties need no yield from
    if any(_is_ctx_name(arg, ctx_names) for arg in call.args):
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else "<call>")
        return ("sync", name)
    return None


def addr_arg(call: ast.Call, op: str) -> Optional[ast.AST]:
    """The address operand of a ctx memory op (``atomic`` carries the op
    enum first; every other op leads with the address)."""
    idx = 1 if op == "atomic" else 0
    if len(call.args) > idx:
        return call.args[idx]
    for kw in call.keywords:
        if kw.arg == "addr":
            return kw.value
    return None


def dump(node: Optional[ast.AST]) -> str:
    return ast.dump(node) if node is not None else "<none>"


def keyword(call: ast.Call, name: str) -> Optional[ast.AST]:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def addr_is_private(addr: Optional[ast.AST], private_names: Set[str]) -> bool:
    """True when the address expression involves WG identity — a per-WG
    word no other WG races on."""
    if addr is None:
        return False
    for sub in ast.walk(addr):
        if isinstance(sub, ast.Attribute) and sub.attr in PRIVATE_NAMES:
            return True
        if isinstance(sub, ast.Name) and sub.id in private_names:
            return True
    return False


def addr_base(addr: Optional[ast.AST]) -> str:
    """The storage family an address expression names.

    Strips subscripts (``member_flags[wg]`` -> ``member_flags``) and
    follows attribute chains to one dotted base (``self.lock_addr`` ->
    ``lock_addr`` since ``self`` carries no information across methods of
    the same primitive). Call-derived addresses return the callee name
    (``self._slot(t)`` -> ``_slot``) so a role hint can resolve them.
    """
    node = addr
    while True:
        if isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.BinOp):
            node = node.left
        elif isinstance(node, ast.Call):
            node = node.func
        else:
            break
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return dump(node)


def divergent_test(test: ast.AST) -> bool:
    """True when a condition depends on wavefront identity."""
    for sub in ast.walk(test):
        if isinstance(sub, ast.Attribute) and sub.attr in DIVERGENT_NAMES:
            return True
        if isinstance(sub, ast.Name) and sub.id in DIVERGENT_NAMES:
            return True
    return False

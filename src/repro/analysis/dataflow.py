"""Flow-sensitive dataflow passes over kernel CFGs.

Three passes, each consumed both by the CFG-hosted lint rules
(:mod:`.rules`) and by the progress-dependency pass (:mod:`.progress`):

* **Reaching RMW definitions** — which atomic read-modify-writes on
  which address families reach each program point (gen-only, no kill:
  an atomic whose effect raced once is vulnerable forever, matching the
  window-of-vulnerability reasoning of §IV.C).
* **Lockset tracking** — a *must* analysis of critical-section depth:
  meet over predecessors is ``min``, acquires increment, releases
  decrement clamped at zero (an early return after a conditional
  release must not go negative). A load/store pair is only "protected"
  if *every* path to it holds the lock.
* **Wait classification** — every loop and every blessed wait entry
  point classified as ``busy-spin`` (polls memory with no blessed
  wait: holds its CU slot forever), ``blocking-wait`` (a blessed wait
  with an exact-equality recheck: correct only if wakeups are never
  lost) or ``interval-wait`` (monotonic / fused recheck: re-armable,
  immune to lost wakeups).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.cfg import CFG, DeviceOp, Loop
from repro.analysis.dsl import (
    LOCK_ACQUIRE_METHODS,
    LOCK_RELEASE_METHODS,
    POLL_OPS,
    PRIVATE_NAMES,
    RMW_OPS,
    SYNC_ENTRY_METHODS,
    WAIT_OPS,
    addr_arg,
    addr_base,
    addr_is_private,
    divergent_test,
    dump,
    keyword,
)

#: lockset lattice top (= "unreached"); depths are clamped below this.
_TOP = 1 << 30
#: widening cap so acquire-in-a-loop converges.
_MAX_DEPTH = 64


def private_index_names(cfg: CFG) -> Set[str]:
    """Names assigned from WG-identity expressions — per-WG indices."""
    names: Set[str] = set()
    for node in cfg.kfn.nodes:
        if isinstance(node, ast.Assign) and addr_is_private(node.value, names):
            for tgt in node.targets:
                if isinstance(tgt, ast.Name):
                    names.add(tgt.id)
    return names


# -- reaching RMW definitions -------------------------------------------------

@dataclass
class ReachingRMW:
    """Per-block entry sets of reaching atomic-RMW definitions.

    Keys are canonical address dumps (the exact operand expression);
    values map to the earliest such RMW's line, preserving the original
    linter's "first update wins" reporting.
    """

    entry: Dict[int, Dict[str, int]]

    def at_op(self, cfg: CFG, op: DeviceOp) -> Dict[str, int]:
        """Defs reaching ``op``: block entry plus earlier ops in-block."""
        reach = dict(self.entry.get(op.block, {}))
        for prev in cfg.blocks[op.block].ops:
            if prev is op:
                break
            _rmw_gen(prev, reach)
        return reach


def _rmw_gen(op: DeviceOp, into: Dict[str, int]) -> None:
    if op.group != "ctx" or op.name not in (RMW_OPS | {"atomic"}):
        return
    key = dump(op.addr)
    if key not in into or op.line < into[key]:
        into.setdefault(key, op.line)


def reaching_rmw(cfg: CFG) -> ReachingRMW:
    entry: Dict[int, Dict[str, int]] = {bid: {} for bid in cfg.blocks}
    order = cfg.rpo()
    changed = True
    while changed:
        changed = False
        for bid in order:
            block = cfg.blocks[bid]
            out = dict(entry[bid])
            for op in block.ops:
                _rmw_gen(op, out)
            for edge in block.succs:
                dst = entry[edge.dst]
                for key, line in out.items():
                    if key not in dst or line < dst[key]:
                        dst[key] = min(line, dst.get(key, line))
                        changed = True
    return ReachingRMW(entry=entry)


# -- lockset (critical-section depth) must-analysis ---------------------------

@dataclass
class Lockset:
    """Per-block critical-section depth on entry (must-analysis)."""

    entry: Dict[int, int]

    def at_op(self, cfg: CFG, op: DeviceOp) -> int:
        depth = self.entry.get(op.block, 0)
        if depth >= _TOP:
            return 0  # unreachable block: treat as unprotected
        for prev in cfg.blocks[op.block].ops:
            if prev is op:
                break
            depth = _lock_transfer(prev, depth)
        return depth


def _lock_transfer(op: DeviceOp, depth: int) -> int:
    if (op.group == "sync" and op.name in LOCK_ACQUIRE_METHODS) or \
            (op.group == "ctx" and op.name == "acquire_test_and_set"):
        return min(depth + 1, _MAX_DEPTH)
    if op.group == "sync" and op.name in LOCK_RELEASE_METHODS:
        return max(0, depth - 1)
    return depth


def lockset(cfg: CFG) -> Lockset:
    entry: Dict[int, int] = {bid: _TOP for bid in cfg.blocks}
    entry[cfg.entry] = 0
    order = cfg.rpo()
    changed = True
    while changed:
        changed = False
        for bid in order:
            depth = entry[bid]
            if depth >= _TOP:
                continue
            for op in cfg.blocks[bid].ops:
                depth = _lock_transfer(op, depth)
            for edge in cfg.blocks[bid].succs:
                if depth < entry[edge.dst]:
                    entry[edge.dst] = depth
                    changed = True
    return Lockset(entry=entry)


# -- wait classification ------------------------------------------------------

#: wait kinds, from worst to best for forward progress.
BUSY_SPIN = "busy-spin"
BLOCKING_WAIT = "blocking-wait"
INTERVAL_WAIT = "interval-wait"


@dataclass
class WaitSite:
    """One point where a wavefront can stop making forward progress."""

    kind: str  # BUSY_SPIN | BLOCKING_WAIT | INTERVAL_WAIT
    line: int
    col: int
    #: the blessed wait op (None for a raw poll loop)
    op: Optional[DeviceOp] = None
    #: the enclosing loop when the wait sits in one
    loop: Optional[Loop] = None
    #: storage family being waited on ("" when unknown)
    base: str = ""
    #: exact-equality recheck has a `satisfied=` monotonic predicate
    monotonic: bool = False
    #: update fused into the wait via `op=` (waiting-atomic, §IV.D)
    fused: bool = False
    #: wait declared single-waiter (`exclusive=True`)
    exclusive: bool = False
    #: address indexes WG identity — at most one WG waits per word
    private_indexed: bool = False
    #: tests guarding the wait (role-divergent branches)
    guards: Tuple[Tuple[ast.AST, bool], ...] = ()
    #: names of ctx polls when kind == BUSY_SPIN
    polls: List[str] = field(default_factory=list)

    @property
    def divergent_guard(self) -> bool:
        return any(divergent_test(t) for t, _ in self.guards)


def _loop_of(cfg: CFG, op: DeviceOp) -> Optional[Loop]:
    best: Optional[Loop] = None
    for loop in cfg.loops:
        if op.block in loop.blocks:
            if best is None or len(loop.blocks) < len(best.blocks):
                best = loop  # innermost
    return best


def _wait_site_for_op(cfg: CFG, op: DeviceOp,
                      private_names: Set[str]) -> WaitSite:
    call = op.call
    monotonic = keyword(call, "satisfied") is not None
    op_kw = keyword(call, "op")
    # acquire_test_and_set *is* a fused RMW wait; sync_wait becomes one
    # when armed with a non-LOAD `op=` (the §IV.D waiting atomic).
    fused = op.name == "acquire_test_and_set" or (
        op_kw is not None and "LOAD" not in dump(op_kw))
    excl = False
    excl_kw = keyword(call, "exclusive")
    if isinstance(excl_kw, ast.Constant):
        excl = bool(excl_kw.value)
    addr = op.addr if op.addr is not None else (
        call.args[0] if call.args else keyword(call, "addr"))
    kind = INTERVAL_WAIT if (monotonic or fused) else BLOCKING_WAIT
    return WaitSite(
        kind=kind, line=op.line, col=op.col, op=op, loop=_loop_of(cfg, op),
        base=addr_base(addr), monotonic=monotonic, fused=fused,
        exclusive=excl,
        private_indexed=addr_is_private(addr, private_names),
        guards=cfg.blocks[op.block].guards,
    )


def classify_waits(cfg: CFG) -> List[WaitSite]:
    """Every wait site in the kernel, flow-classified.

    A loop is a ``busy-spin`` only if *no* path through it reaches a
    blessed wait (sync_wait / wait_for_value / acquire_test_and_set or a
    sync-primitive entry method) — the flow-sensitive refinement of the
    old "any blessed call textually inside" heuristic.
    """
    private_names = private_index_names(cfg)
    sites: List[WaitSite] = []
    seen_calls: Set[int] = set()
    for op in cfg.ops(unique=True):
        if op.group == "ctx" and op.name in WAIT_OPS:
            if id(op.call) in seen_calls:
                continue
            seen_calls.add(id(op.call))
            sites.append(_wait_site_for_op(cfg, op, private_names))
    for loop in cfg.loops:
        polls: List[str] = []
        blessed = False
        for bid in sorted(loop.blocks):
            for op in cfg.blocks[bid].ops:
                if op.group == "ctx" and op.name in WAIT_OPS:
                    blessed = True
                elif op.group == "sync" and op.name in SYNC_ENTRY_METHODS:
                    blessed = True
                elif op.group == "ctx" and op.name in POLL_OPS:
                    polls.append(op.name)
        if polls and not blessed and not loop.bounded:
            node = loop.node
            sites.append(WaitSite(
                kind=BUSY_SPIN, line=node.lineno, col=node.col_offset,
                loop=loop, polls=polls,
                guards=cfg.blocks[loop.header].guards,
            ))
    sites.sort(key=lambda s: (s.line, s.col))
    return sites


# -- shared-address writes (the update side of wait-for edges) ----------------

@dataclass
class WriteSite:
    """One ctx write that can satisfy someone's wait."""

    op: DeviceOp
    base: str
    private_indexed: bool
    guards: Tuple[Tuple[ast.AST, bool], ...]


def collect_writes(cfg: CFG) -> List[WriteSite]:
    from repro.analysis.dsl import WRITE_OPS

    private_names = private_index_names(cfg)
    out: List[WriteSite] = []
    for op in cfg.ops(unique=True):
        if op.group != "ctx" or op.name not in WRITE_OPS:
            continue
        addr = op.addr
        out.append(WriteSite(
            op=op, base=addr_base(addr),
            private_indexed=addr_is_private(addr, private_names),
            guards=cfg.blocks[op.block].guards,
        ))
    return out

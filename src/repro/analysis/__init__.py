"""Correctness tooling for the kernel DSL: static linter + sync sanitizer.

Two cooperating halves guard the growing workload registry against the
progress and synchronization bugs the paper is about:

- :mod:`repro.analysis.linter` — a stdlib-``ast`` linter over kernel
  bodies and sync primitives. Its rules (:mod:`repro.analysis.rules`)
  catch dropped device-op generators, raw busy-wait poll loops (the §IV
  IFP violation), check-then-wait patterns that re-open the §IV.C window
  of vulnerability, divergent ``__syncthreads``, and unprotected
  read-modify-writes on shared memory — before a simulation ever runs.
- :mod:`repro.analysis.analyzer` and friends — the static progress
  analyzer: a CFG builder (:mod:`repro.analysis.cfg`) and dataflow
  passes (:mod:`repro.analysis.dataflow`) over the same kernel ASTs,
  a progress-dependency pass (:mod:`repro.analysis.progress`) deriving
  role wait-for graphs per benchmark, and executable policy progress
  specs (:mod:`repro.analysis.specs`) that classify every
  (benchmark, policy) cell as MUST_COMPLETE / MAY_DEADLOCK / UNKNOWN —
  a static prediction of the paper's IFP deadlock table, cross-checked
  against the dynamic differential suite
  (:mod:`repro.analysis.crosscheck`).
- :mod:`repro.analysis.sanitizer` — an opt-in
  (:attr:`~repro.gpu.config.GPUConfig.sanitize`) dynamic detector that
  maintains per-WG vector clocks and locksets over the memory hierarchy's
  plain loads/stores, deriving happens-before edges from the atomics
  performed at the L2, and reports unsynchronized conflicting accesses
  as ``sanitizer.*`` stats plus a machine-readable race report.

Surface: ``python -m repro lint [--json|--format=github] [paths]``,
``python -m repro analyze [BENCH...] [--json|--table|--dot]`` and
``python -m repro sanitize <benchmark>``.
"""

from repro.analysis.analyzer import AnalysisReport, build_report
from repro.analysis.findings import Finding, SEVERITIES
from repro.analysis.linter import LintReport, lint_paths, lint_source
from repro.analysis.rules import RULES, Rule
from repro.analysis.sanitizer import SyncSanitizer
from repro.analysis.specs import (
    MAY_DEADLOCK,
    MUST_COMPLETE,
    UNKNOWN,
    table_policies,
)

__all__ = [
    "AnalysisReport",
    "Finding",
    "LintReport",
    "MAY_DEADLOCK",
    "MUST_COMPLETE",
    "RULES",
    "Rule",
    "SEVERITIES",
    "SyncSanitizer",
    "UNKNOWN",
    "build_report",
    "lint_paths",
    "lint_source",
    "table_policies",
]

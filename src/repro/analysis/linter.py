"""Linter driver: file discovery, suppression, baseline, CLI rendering.

Suppression: append ``# repro: noqa`` to the finding's line to silence
every rule there, or ``# repro: noqa[rule-a,rule-b]`` for specific rules.
A noqa comment on the enclosing ``def`` line suppresses matching rules
for the whole kernel function.

Baseline: a JSON file of known findings (``{"findings": [{"rule", "path",
"line"}, ...]}``). Findings matching a baseline entry are reported
separately and do not fail the run — CI fails only on *new* findings.
Regenerate with ``python -m repro lint --write-baseline``.
"""

from __future__ import annotations

import ast
import json
import os
import re
import sys
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.rules import RULES, check_kernel, iter_kernel_functions

#: default lint targets, relative to the repository root
DEFAULT_PATHS = ("src/repro/workloads", "src/repro/sync", "examples")

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[([A-Za-z0-9_,\s\-]+)\])?")


@dataclass
class LintReport:
    """Everything one lint run produced, partitioned by disposition."""

    findings: List[Finding] = field(default_factory=list)  # actionable
    suppressed: List[Finding] = field(default_factory=list)  # noqa'd
    baselined: List[Finding] = field(default_factory=list)  # known
    files_scanned: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def all_findings(self) -> List[Finding]:
        return [*self.findings, *self.baselined]

    def to_dict(self) -> Dict:
        return {
            "ok": self.ok,
            "files_scanned": self.files_scanned,
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "baselined": [f.to_dict() for f in self.baselined],
            "rules": sorted(RULES),
        }

    def render(self) -> str:
        lines = [f.render() for f in sorted(
            self.findings, key=lambda f: (f.path, f.line, f.rule_id))]
        errors = sum(1 for f in self.findings if f.severity == "error")
        warnings = len(self.findings) - errors
        lines.append(
            f"{self.files_scanned} file(s) scanned: {errors} error(s), "
            f"{warnings} warning(s)"
            + (f", {len(self.suppressed)} suppressed" if self.suppressed else "")
            + (f", {len(self.baselined)} baselined" if self.baselined else "")
        )
        return "\n".join(lines)


def _noqa_map(source: str) -> Dict[int, Optional[Set[str]]]:
    """line -> suppressed rule ids (None = all rules)."""
    out: Dict[int, Optional[Set[str]]] = {}
    for i, line in enumerate(source.splitlines(), start=1):
        m = _NOQA_RE.search(line)
        if not m:
            continue
        if m.group(1) is None:
            out[i] = None
        else:
            out[i] = {r.strip() for r in m.group(1).split(",") if r.strip()}
    return out


def lint_source(source: str, path: str) -> Tuple[List[Finding], List[Finding]]:
    """Lint one file's source; returns ``(active, suppressed)`` findings."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(
            rule_id="syntax-error", severity="error", path=path,
            line=exc.lineno or 1, col=(exc.offset or 0) + 1,
            message=f"file does not parse: {exc.msg}",
            hint="fix the syntax error before the kernel rules can run",
        )], []
    findings: List[Finding] = []
    for kfn in iter_kernel_functions(tree, path):
        findings.extend(check_kernel(kfn))
    noqa = _noqa_map(source)

    def line_suppresses(line: int, rule_id: str) -> bool:
        if line not in noqa:
            return False
        rules_here = noqa[line]
        return rules_here is None or rule_id in rules_here

    def is_suppressed(f: Finding) -> bool:
        if line_suppresses(f.line, f.rule_id):
            return True
        # A noqa on the enclosing `def` line silences the whole kernel.
        return f.def_line > 0 and f.def_line != f.line and \
            line_suppresses(f.def_line, f.rule_id)

    active = [f for f in findings if not is_suppressed(f)]
    suppressed = [f for f in findings if is_suppressed(f)]
    return active, suppressed


def iter_python_files(paths: Sequence[str]) -> Iterable[str]:
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs
                    if d not in ("__pycache__", ".git", ".pytest_cache"))
                for name in sorted(files):
                    if name.endswith(".py"):
                        yield os.path.join(root, name)
        elif path.endswith(".py"):
            yield path


def load_baseline(path: Optional[str]) -> List[Dict]:
    if not path or not os.path.exists(path):
        return []
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    return list(data.get("findings", []))


def write_baseline(path: str, findings: Sequence[Finding]) -> None:
    entries = sorted(
        (f.baseline_key() for f in findings),
        key=lambda e: (e["path"], e["line"], e["rule"]))
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"version": 1, "findings": entries}, fh, indent=2)
        fh.write("\n")


def lint_paths(
    paths: Sequence[str],
    baseline_path: Optional[str] = None,
) -> LintReport:
    """Lint every ``.py`` file under ``paths`` and partition the results."""
    report = LintReport()
    baseline = load_baseline(baseline_path)
    baseline_keys = {(e["rule"], e["path"], e["line"]) for e in baseline}
    for filename in iter_python_files(paths):
        report.files_scanned += 1
        try:
            with open(filename, "r", encoding="utf-8") as fh:
                source = fh.read()
        except OSError as exc:
            report.findings.append(Finding(
                rule_id="io-error", severity="error", path=filename,
                line=1, col=1, message=f"cannot read file: {exc}", hint=""))
            continue
        active, suppressed = lint_source(source, filename)
        report.suppressed.extend(suppressed)
        for f in active:
            if (f.rule_id, f.path, f.line) in baseline_keys:
                report.baselined.append(f)
            else:
                report.findings.append(f)
    return report


def run_lint(
    paths: Sequence[str],
    json_out: bool = False,
    baseline_path: Optional[str] = None,
    write_baseline_path: Optional[str] = None,
    stream=None,
    fmt: Optional[str] = None,
) -> int:
    """CLI entry point for ``python -m repro lint``; returns exit status.

    ``fmt`` selects the rendering: ``"text"`` (default), ``"json"``, or
    ``"github"`` (GitHub Actions ``::error``/``::warning`` workflow
    commands, one per finding, plus the text summary on stderr-style
    trailing line).
    """
    stream = stream if stream is not None else sys.stdout
    if fmt is None:
        fmt = "json" if json_out else "text"
    targets = list(paths) if paths else [
        p for p in DEFAULT_PATHS if os.path.exists(p)]
    if not targets:
        print("lint: no paths given and no default paths found", file=stream)
        return 2
    report = lint_paths(targets, baseline_path=baseline_path)
    if write_baseline_path:
        write_baseline(write_baseline_path, report.all_findings())
        print(f"wrote {len(report.all_findings())} finding(s) to "
              f"{write_baseline_path}", file=stream)
        return 0
    if fmt == "json":
        print(json.dumps(report.to_dict(), indent=2), file=stream)
    elif fmt == "github":
        for f in sorted(report.findings,
                        key=lambda f: (f.path, f.line, f.rule_id)):
            print(f.render_github(), file=stream)
        print(f"{report.files_scanned} file(s) scanned: "
              f"{len(report.findings)} finding(s)", file=stream)
    else:
        print(report.render(), file=stream)
    return 0 if report.ok else 1

"""Lint findings: the structured unit both the CLI and tests consume."""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict

#: Recognised severities, most severe first.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is stored as given to the linter (relative paths in, relative
    paths out) so baselines stay stable across checkouts.
    """

    rule_id: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    hint: str
    function: str = ""
    #: line of the enclosing ``def`` (0 = not inside a kernel function);
    #: a ``# repro: noqa[...]`` on that line suppresses the whole kernel.
    def_line: int = 0

    def baseline_key(self) -> Dict[str, Any]:
        """The identity a baseline entry matches on."""
        return {"rule": self.rule_id, "path": self.path, "line": self.line}

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    def render(self) -> str:
        where = f"{self.path}:{self.line}:{self.col}"
        tail = f" (hint: {self.hint})" if self.hint else ""
        return f"{where}: [{self.rule_id}] {self.severity}: {self.message}{tail}"

    def render_github(self) -> str:
        """One GitHub Actions workflow-command annotation line."""
        level = "error" if self.severity == "error" else "warning"
        return (f"::{level} file={self.path},line={self.line},"
                f"col={self.col},title={self.rule_id}::{self.message}")

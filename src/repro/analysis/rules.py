"""The lint rule registry and the five kernel rules.

Kernels in this repository are Python generators programmed against
:class:`~repro.gpu.device_api.WavefrontCtx`; every device operation and
every sync-primitive method (``mutex.acquire(ctx)``, ``barrier.arrive(
ctx, ...)``) is itself a generator that must be driven with ``yield
from``. The rules below analyze exactly that DSL: they only fire inside
*kernel functions* — functions that take a ``ctx`` parameter (or one
annotated ``WavefrontCtx``) or that call ``ctx`` device ops.

Each rule is registered with an id, a severity, a fix hint and the paper
section that motivates it; ``# repro: noqa[rule-id]`` on the offending
line suppresses a finding (see :mod:`repro.analysis.linter`).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.findings import SEVERITIES, Finding

# -- the device DSL surface ---------------------------------------------------

#: ctx methods that return generators and must be driven with ``yield from``.
DEVICE_GEN_OPS = frozenset({
    "compute", "load", "store", "lds_read", "lds_write", "s_sleep",
    "syncthreads", "atomic", "atomic_load", "atomic_add", "atomic_sub",
    "atomic_exch", "atomic_store", "atomic_cas", "sync_wait",
    "acquire_test_and_set", "wait_for_value",
})

#: ctx methods that are plain calls (no generator, no ``yield from``).
CTX_PLAIN_OPS = frozenset({"progress"})

#: the blessed waiting entry points — lowered by the active policy.
WAIT_OPS = frozenset({"sync_wait", "wait_for_value", "acquire_test_and_set"})

#: ctx reads a loop can poll on (the busy-wait ingredients).
POLL_OPS = frozenset({
    "load", "atomic", "atomic_load", "atomic_add", "atomic_sub",
    "atomic_exch", "atomic_cas",
})

#: read-modify-write ops whose failure + separate wait re-opens §IV.C.
RMW_OPS = frozenset({"atomic_add", "atomic_sub", "atomic_exch", "atomic_cas"})

#: sync-primitive methods that suspend/advance execution when given a ctx.
SYNC_ENTRY_METHODS = frozenset({"acquire", "arrive", "join", "group_size"})

#: identifiers that make a condition wavefront-divergent (syncthreads is
#: WG-local, so only wavefront-level identity matters — not wg_id).
DIVERGENT_NAMES = frozenset({"is_master", "wf_id"})

#: identifiers that mark an address expression as WG-private.
PRIVATE_NAMES = frozenset({"grid_index", "wg_id", "wf_id"})


# -- kernel-function model ----------------------------------------------------

def _annotation_mentions_ctx(node: ast.arg) -> bool:
    ann = node.annotation
    if ann is None:
        return False
    try:
        text = ast.unparse(ann)
    except Exception:  # pragma: no cover - malformed annotation
        return False
    return "WavefrontCtx" in text


def _ctx_param_names(fn: ast.FunctionDef) -> Set[str]:
    names: Set[str] = set()
    args = fn.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        if arg.arg == "ctx" or _annotation_mentions_ctx(arg):
            names.add(arg.arg)
    return names


@dataclass
class KernelFunction:
    """One function that executes device code, with its own AST subset.

    ``nodes`` excludes the subtrees of nested function definitions — each
    nested ``def`` is analyzed as its own :class:`KernelFunction`.
    """

    node: ast.FunctionDef
    path: str
    ctx_names: Set[str]
    nodes: List[ast.AST] = field(default_factory=list)
    parents: Dict[int, ast.AST] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.node.name

    def parent_chain(self, node: ast.AST) -> Iterator[ast.AST]:
        """Ancestors of ``node`` up to (and excluding) the function def."""
        cur = self.parents.get(id(node))
        while cur is not None and cur is not self.node:
            yield cur
            cur = self.parents.get(id(cur))


def _collect_own(fn: ast.FunctionDef) -> Tuple[List[ast.AST], Dict[int, ast.AST]]:
    """Walk ``fn`` without descending into nested function definitions."""
    nodes: List[ast.AST] = []
    parents: Dict[int, ast.AST] = {}
    stack: List[ast.AST] = [fn]
    while stack:
        cur = stack.pop()
        for child in ast.iter_child_nodes(cur):
            parents[id(child)] = cur
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                continue
            nodes.append(child)
            stack.append(child)
    return nodes, parents


def iter_kernel_functions(tree: ast.Module, path: str) -> Iterator[KernelFunction]:
    """Every function in ``tree`` that looks like kernel/device code."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.FunctionDef):
            continue
        ctx_names = _ctx_param_names(node)
        nodes, parents = _collect_own(node)
        if not ctx_names:
            # Fall back: closures over an outer `ctx` name still count.
            if not any(isinstance(n, ast.Name) and n.id == "ctx" for n in nodes):
                continue
            ctx_names = {"ctx"}
        yield KernelFunction(node=node, path=path, ctx_names=ctx_names,
                             nodes=nodes, parents=parents)


# -- device-call classification -----------------------------------------------

def _is_ctx_name(node: ast.AST, ctx_names: Set[str]) -> bool:
    return isinstance(node, ast.Name) and node.id in ctx_names


def classify_call(call: ast.Call, ctx_names: Set[str]) -> Optional[Tuple[str, str]]:
    """Classify a call as a device-op generator.

    Returns ``("ctx", op)`` for ``ctx.<device op>(...)``, ``("sync",
    method)`` for a call that passes a bare ctx argument (sync-primitive
    methods and kernel helper generators), or ``None`` for host code.
    """
    func = call.func
    if isinstance(func, ast.Attribute) and _is_ctx_name(func.value, ctx_names):
        if func.attr in DEVICE_GEN_OPS:
            return ("ctx", func.attr)
        return None  # ctx.progress(...) and properties need no yield from
    if any(_is_ctx_name(arg, ctx_names) for arg in call.args):
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else "<call>")
        return ("sync", name)
    return None


def _device_calls(kfn: KernelFunction) -> Iterator[Tuple[ast.Call, str, str]]:
    for node in kfn.nodes:
        if isinstance(node, ast.Call):
            kind = classify_call(node, kfn.ctx_names)
            if kind is not None:
                yield node, kind[0], kind[1]


def _addr_arg(call: ast.Call, op: str) -> Optional[ast.AST]:
    """The address operand of a ctx memory op (``atomic`` carries the op
    enum first; every other op leads with the address)."""
    idx = 1 if op == "atomic" else 0
    if len(call.args) > idx:
        return call.args[idx]
    for kw in call.keywords:
        if kw.arg == "addr":
            return kw.value
    return None


def _dump(node: Optional[ast.AST]) -> str:
    return ast.dump(node) if node is not None else "<none>"


def _keyword(call: ast.Call, name: str) -> Optional[ast.AST]:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


# -- rule framework -----------------------------------------------------------

@dataclass(frozen=True)
class Rule:
    """One registered lint rule."""

    rule_id: str
    severity: str
    summary: str
    hint: str
    paper_ref: str
    check: Callable[[KernelFunction], Iterator[Finding]]


RULES: Dict[str, Rule] = {}


def register(rule_id: str, severity: str, summary: str, hint: str,
             paper_ref: str) -> Callable:
    if severity not in SEVERITIES:
        raise ValueError(f"unknown severity {severity!r}")

    def deco(fn: Callable[[KernelFunction], Iterator[Finding]]) -> Callable:
        if rule_id in RULES:
            raise ValueError(f"duplicate rule {rule_id}")
        RULES[rule_id] = Rule(rule_id=rule_id, severity=severity,
                              summary=summary, hint=hint,
                              paper_ref=paper_ref, check=fn)
        return fn

    return deco


def _finding(rule_id: str, kfn: KernelFunction, node: ast.AST,
             message: str) -> Finding:
    rule = RULES[rule_id]
    return Finding(
        rule_id=rule_id,
        severity=rule.severity,
        path=kfn.path,
        line=getattr(node, "lineno", kfn.node.lineno),
        col=getattr(node, "col_offset", 0) + 1,
        message=message,
        hint=rule.hint,
        function=kfn.name,
    )


# -- rule 1: missing-yield-from ----------------------------------------------

@register(
    "missing-yield-from", "error",
    "a device-op generator is called but never driven",
    "drive device ops with `result = yield from ctx.<op>(...)`; a bare "
    "call builds a generator and silently discards the operation",
    "DSL contract",
)
def check_missing_yield_from(kfn: KernelFunction) -> Iterator[Finding]:
    for call, kind, name in _device_calls(kfn):
        delegated = False
        for anc in kfn.parent_chain(call):
            if isinstance(anc, (ast.YieldFrom, ast.Await)):
                delegated = True
                break
            if isinstance(anc, ast.Return):
                delegated = True  # `return ctx.op(...)` delegates to the caller
                break
            if isinstance(anc, ast.stmt):
                break
        if not delegated:
            label = f"ctx.{name}" if kind == "ctx" else f"{name}(ctx)"
            yield _finding(
                "missing-yield-from", kfn, call,
                f"`{label}(...)` builds a device-op generator that is never "
                "started — the operation is silently dropped",
            )


# -- rule 2: busy-wait-loop ---------------------------------------------------

@register(
    "busy-wait-loop", "error",
    "an unbounded loop polls memory instead of using ctx.sync_wait",
    "express the wait through `ctx.sync_wait` / `ctx.wait_for_value` so "
    "the scheduling policy can lower it without busy-waiting",
    "§IV.B-C",
)
def check_busy_wait_loop(kfn: KernelFunction) -> Iterator[Finding]:
    for node in kfn.nodes:
        if not isinstance(node, ast.While):
            continue
        polls: List[str] = []
        blessed = False
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            kind = classify_call(sub, kfn.ctx_names)
            if kind is None:
                continue
            if kind[0] == "ctx" and kind[1] in WAIT_OPS:
                blessed = True
            elif kind[0] == "sync" and kind[1] in SYNC_ENTRY_METHODS:
                blessed = True
            elif kind[0] == "ctx" and kind[1] in POLL_OPS:
                polls.append(kind[1])
        if polls and not blessed:
            yield _finding(
                "busy-wait-loop", kfn, node,
                f"while-loop polls ctx.{polls[0]} with no sync_wait — a "
                "busy-wait that deadlocks under oversubscription (the "
                "waiting WG never releases its compute-unit slot)",
            )


# -- rule 3: vulnerable-wait --------------------------------------------------

@register(
    "vulnerable-wait", "warning",
    "a failed atomic is followed by a separate exact-equality wait on the "
    "same variable",
    "fuse the update and the wait by passing `op=` to ctx.sync_wait (the "
    "waiting-atomic path), or make the re-check monotonic with "
    "`satisfied=lambda v: v >= target`",
    "§IV.C",
)
def check_vulnerable_wait(kfn: KernelFunction) -> Iterator[Finding]:
    rmw_lines: Dict[str, int] = {}
    for call, kind, name in _device_calls(kfn):
        if kind != "ctx":
            continue
        if name in RMW_OPS or name == "atomic":
            addr = _addr_arg(call, name)
            key = _dump(addr)
            rmw_lines.setdefault(key, call.lineno)
    if not rmw_lines:
        return
    for call, kind, name in _device_calls(kfn):
        if kind != "ctx" or name not in ("wait_for_value", "sync_wait"):
            continue
        if _keyword(call, "satisfied") is not None:
            continue  # monotonic re-check closes the window (Mesa semantics)
        op_kw = _keyword(call, "op")
        if op_kw is not None and "LOAD" not in _dump(op_kw):
            continue  # fused waiting RMW — the §IV.D race-free path
        addr = call.args[0] if call.args else _keyword(call, "addr")
        key = _dump(addr)
        rmw_line = rmw_lines.get(key)
        if rmw_line is not None and rmw_line < call.lineno:
            yield _finding(
                "vulnerable-wait", kfn, call,
                f"exact-equality wait on the variable updated by the atomic "
                f"at line {rmw_line}: the releasing update can land between "
                "the check and the wait arming (window of vulnerability)",
            )


# -- rule 4: divergent-syncthreads -------------------------------------------

def _test_is_divergent(test: ast.AST) -> bool:
    for sub in ast.walk(test):
        if isinstance(sub, ast.Attribute) and sub.attr in DIVERGENT_NAMES:
            return True
        if isinstance(sub, ast.Name) and sub.id in DIVERGENT_NAMES:
            return True
    return False


@register(
    "divergent-syncthreads", "error",
    "ctx.syncthreads() under a wavefront-divergent condition",
    "hoist the barrier out of the `is_master` / `wf_id` conditional — "
    "every wavefront of the WG must arrive or none may",
    "CUDA/HIP __syncthreads contract",
)
def check_divergent_syncthreads(kfn: KernelFunction) -> Iterator[Finding]:
    for call, kind, name in _device_calls(kfn):
        if kind != "ctx" or name != "syncthreads":
            continue
        for anc in kfn.parent_chain(call):
            if isinstance(anc, (ast.If, ast.While, ast.IfExp)) and \
                    _test_is_divergent(anc.test):
                yield _finding(
                    "divergent-syncthreads", kfn, call,
                    "ctx.syncthreads() controlled by a wavefront-divergent "
                    f"condition (line {anc.lineno}): non-participating "
                    "wavefronts never arrive and the WG hangs",
                )
                break


# -- rule 5: nonatomic-shared-rmw --------------------------------------------

def _addr_is_private(addr: Optional[ast.AST], private_names: Set[str]) -> bool:
    if addr is None:
        return False
    for sub in ast.walk(addr):
        if isinstance(sub, ast.Attribute) and sub.attr in PRIVATE_NAMES:
            return True
        if isinstance(sub, ast.Name) and sub.id in private_names:
            return True
    return False


@register(
    "nonatomic-shared-rmw", "warning",
    "plain load/compute/store on shared memory outside any critical section",
    "guard the read-modify-write with a mutex acquire/release, or use "
    "`ctx.atomic_add` and friends for a single-word update",
    "Table 2 workloads",
)
def check_nonatomic_shared_rmw(kfn: KernelFunction) -> Iterator[Finding]:
    findings: List[Finding] = []
    #: names assigned from WG-identity expressions are WG-private indices
    private_names: Set[str] = set()
    for node in kfn.nodes:
        if isinstance(node, ast.Assign) and _addr_is_private(node.value, private_names):
            for tgt in node.targets:
                if isinstance(tgt, ast.Name):
                    private_names.add(tgt.id)

    # Textual-order scan with a lock-depth counter: acquires open a
    # critical section, releases close it (clamped at zero — an early
    # return after a conditional release must not go negative).
    depth = 0
    pending_loads: Dict[str, int] = {}  # addr dump -> lock depth at load
    calls = sorted(
        (n for n in kfn.nodes if isinstance(n, ast.Call)),
        key=lambda c: (c.lineno, c.col_offset),
    )
    for call in calls:
        kind = classify_call(call, kfn.ctx_names)
        if kind is None:
            continue
        group, name = kind
        if (group == "sync" and name == "acquire") or \
                (group == "ctx" and name == "acquire_test_and_set"):
            depth += 1
        elif group == "sync" and name == "release":
            depth = max(0, depth - 1)
        elif group == "ctx" and name == "load":
            addr = _addr_arg(call, name)
            if not _addr_is_private(addr, private_names):
                pending_loads[_dump(addr)] = depth
        elif group == "ctx" and name == "store":
            addr = _addr_arg(call, name)
            key = _dump(addr)
            if key in pending_loads and pending_loads[key] == 0 \
                    and depth == 0 \
                    and not _addr_is_private(addr, private_names):
                findings.append(_finding(
                    "nonatomic-shared-rmw", kfn, call,
                    "store completes a plain read-modify-write on a "
                    "shared address with no enclosing acquire/"
                    "release — concurrent WGs lose updates",
                ))
                del pending_loads[key]
    return iter(findings)

"""The lint rule registry and the five kernel rules, hosted on the CFG.

Kernels in this repository are Python generators programmed against
:class:`~repro.gpu.device_api.WavefrontCtx`; every device operation and
every sync-primitive method (``mutex.acquire(ctx)``, ``barrier.arrive(
ctx, ...)``) is itself a generator that must be driven with ``yield
from``. The rules below analyze exactly that DSL: they only fire inside
*kernel functions* — functions that take a ``ctx`` parameter (or one
annotated ``WavefrontCtx``) or that call ``ctx`` device ops.

Since PR 8 each rule runs over the kernel's control-flow graph
(:mod:`.cfg`) and the dataflow passes (:mod:`.dataflow`) instead of
per-statement AST scans: busy-wait detection asks "does any path
through this loop reach a blessed wait", the vulnerable-wait window is
a reaching-definitions question, and critical sections come from a
must-lockset — same rule ids, severities and messages, flow-sensitive
answers.

Each rule is registered with an id, a severity, a fix hint and the paper
section that motivates it; ``# repro: noqa[rule-id]`` on the offending
line (or on the enclosing ``def`` line) suppresses a finding (see
:mod:`repro.analysis.linter`).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List

from repro.analysis.cfg import CFG, build_cfg
from repro.analysis.dataflow import (
    BUSY_SPIN,
    classify_waits,
    lockset,
    reaching_rmw,
)

# Re-exported so existing imports (`from repro.analysis.rules import
# DEVICE_GEN_OPS, iter_kernel_functions, ...`) keep working after the
# DSL surface moved to repro.analysis.dsl.
from repro.analysis.dsl import (  # noqa: F401
    CTX_PLAIN_OPS,
    DEVICE_GEN_OPS,
    DIVERGENT_NAMES,
    POLL_OPS,
    PRIVATE_NAMES,
    RMW_OPS,
    SYNC_ENTRY_METHODS,
    WAIT_OPS,
    KernelFunction,
    classify_call,
    divergent_test as _test_is_divergent,
    dump as _dump,
    iter_kernel_functions,
    keyword as _keyword,
)
from repro.analysis.findings import SEVERITIES, Finding


# -- rule framework -----------------------------------------------------------

@dataclass(frozen=True)
class Rule:
    """One registered lint rule."""

    rule_id: str
    severity: str
    summary: str
    hint: str
    paper_ref: str
    check: Callable[[CFG], Iterator[Finding]]


RULES: Dict[str, Rule] = {}


def register(rule_id: str, severity: str, summary: str, hint: str,
             paper_ref: str) -> Callable:
    if severity not in SEVERITIES:
        raise ValueError(f"unknown severity {severity!r}")

    def deco(fn: Callable[[CFG], Iterator[Finding]]) -> Callable:
        if rule_id in RULES:
            raise ValueError(f"duplicate rule {rule_id}")
        RULES[rule_id] = Rule(rule_id=rule_id, severity=severity,
                              summary=summary, hint=hint,
                              paper_ref=paper_ref, check=fn)
        return fn

    return deco


def _finding(rule_id: str, cfg: CFG, node: ast.AST, message: str) -> Finding:
    rule = RULES[rule_id]
    kfn = cfg.kfn
    return Finding(
        rule_id=rule_id,
        severity=rule.severity,
        path=kfn.path,
        line=getattr(node, "lineno", kfn.node.lineno),
        col=getattr(node, "col_offset", 0) + 1,
        message=message,
        hint=rule.hint,
        function=kfn.name,
        def_line=kfn.node.lineno,
    )


def check_kernel(kfn: KernelFunction) -> List[Finding]:
    """Build the CFG once and run every registered rule over it.

    The builder's own ``analysis-error`` findings ride along (they are
    not registered rules — the registry stays exactly the five
    documented ids — but they surface through the same reporting path).
    """
    cfg = build_cfg(kfn)
    findings: List[Finding] = list(cfg.errors)
    for rule in RULES.values():
        findings.extend(rule.check(cfg))
    return findings


# -- rule 1: missing-yield-from ----------------------------------------------

@register(
    "missing-yield-from", "error",
    "a device-op generator is called but never driven",
    "drive device ops with `result = yield from ctx.<op>(...)`; a bare "
    "call builds a generator and silently discards the operation",
    "DSL contract",
)
def check_missing_yield_from(cfg: CFG) -> Iterator[Finding]:
    for op in cfg.ops(unique=True):
        if op.delegated:
            continue
        label = f"ctx.{op.name}" if op.group == "ctx" else f"{op.name}(ctx)"
        yield _finding(
            "missing-yield-from", cfg, op.call,
            f"`{label}(...)` builds a device-op generator that is never "
            "started — the operation is silently dropped",
        )


# -- rule 2: busy-wait-loop ---------------------------------------------------

@register(
    "busy-wait-loop", "error",
    "an unbounded loop polls memory instead of using ctx.sync_wait",
    "express the wait through `ctx.sync_wait` / `ctx.wait_for_value` so "
    "the scheduling policy can lower it without busy-waiting",
    "§IV.B-C",
)
def check_busy_wait_loop(cfg: CFG) -> Iterator[Finding]:
    for site in classify_waits(cfg):
        if site.kind != BUSY_SPIN or site.loop is None:
            continue
        if not isinstance(site.loop.node, ast.While):
            continue  # bounded-iteration `for` polls terminate by construction
        yield _finding(
            "busy-wait-loop", cfg, site.loop.node,
            f"while-loop polls ctx.{site.polls[0]} with no sync_wait — a "
            "busy-wait that deadlocks under oversubscription (the "
            "waiting WG never releases its compute-unit slot)",
        )


# -- rule 3: vulnerable-wait --------------------------------------------------

@register(
    "vulnerable-wait", "warning",
    "a failed atomic is followed by a separate exact-equality wait on the "
    "same variable",
    "fuse the update and the wait by passing `op=` to ctx.sync_wait (the "
    "waiting-atomic path), or make the re-check monotonic with "
    "`satisfied=lambda v: v >= target`",
    "§IV.C",
)
def check_vulnerable_wait(cfg: CFG) -> Iterator[Finding]:
    rmw = reaching_rmw(cfg)
    for op in cfg.ops(unique=True):
        if op.group != "ctx" or op.name not in ("wait_for_value", "sync_wait"):
            continue
        call = op.call
        if _keyword(call, "satisfied") is not None:
            continue  # monotonic re-check closes the window (Mesa semantics)
        op_kw = _keyword(call, "op")
        if op_kw is not None and "LOAD" not in _dump(op_kw):
            continue  # fused waiting RMW — the §IV.D race-free path
        addr = op.addr if op.addr is not None else (
            call.args[0] if call.args else _keyword(call, "addr"))
        reaching = rmw.at_op(cfg, op)
        rmw_line = reaching.get(_dump(addr))
        if rmw_line is not None and rmw_line < call.lineno:
            yield _finding(
                "vulnerable-wait", cfg, call,
                f"exact-equality wait on the variable updated by the atomic "
                f"at line {rmw_line}: the releasing update can land between "
                "the check and the wait arming (window of vulnerability)",
            )


# -- rule 4: divergent-syncthreads -------------------------------------------

@register(
    "divergent-syncthreads", "error",
    "ctx.syncthreads() under a wavefront-divergent condition",
    "hoist the barrier out of the `is_master` / `wf_id` conditional — "
    "every wavefront of the WG must arrive or none may",
    "CUDA/HIP __syncthreads contract",
)
def check_divergent_syncthreads(cfg: CFG) -> Iterator[Finding]:
    kfn = cfg.kfn
    for op in cfg.ops(unique=True):
        if op.group != "ctx" or op.name != "syncthreads":
            continue
        guard_line = None
        # Innermost CFG guard first — the block's guard stack is
        # outermost-first, so walk it in reverse.
        for test, _polarity in reversed(cfg.blocks[op.block].guards):
            if _test_is_divergent(test):
                owner = kfn.parents.get(id(test), test)
                guard_line = getattr(owner, "lineno", test.lineno)
                break
        if guard_line is None:
            # Expression-level divergence (IfExp) never becomes a CFG
            # branch; fall back to the ancestor chain for it.
            for anc in kfn.parent_chain(op.call):
                if isinstance(anc, (ast.If, ast.While, ast.IfExp)) and \
                        _test_is_divergent(anc.test):
                    guard_line = anc.lineno
                    break
        if guard_line is not None:
            yield _finding(
                "divergent-syncthreads", cfg, op.call,
                "ctx.syncthreads() controlled by a wavefront-divergent "
                f"condition (line {guard_line}): non-participating "
                "wavefronts never arrive and the WG hangs",
            )


# -- rule 5: nonatomic-shared-rmw --------------------------------------------

@register(
    "nonatomic-shared-rmw", "warning",
    "plain load/compute/store on shared memory outside any critical section",
    "guard the read-modify-write with a mutex acquire/release, or use "
    "`ctx.atomic_add` and friends for a single-word update",
    "Table 2 workloads",
)
def check_nonatomic_shared_rmw(cfg: CFG) -> Iterator[Finding]:
    from repro.analysis.dataflow import private_index_names
    from repro.analysis.dsl import addr_is_private

    locks = lockset(cfg)
    private_names = private_index_names(cfg)
    pending_loads: Dict[str, int] = {}  # addr dump -> lock depth at load
    for op in cfg.ops(unique=True):
        if op.group != "ctx" or op.name not in ("load", "store"):
            continue
        depth = locks.at_op(cfg, op)
        if op.name == "load":
            if not addr_is_private(op.addr, private_names):
                pending_loads[_dump(op.addr)] = depth
            continue
        key = _dump(op.addr)
        if key in pending_loads and pending_loads[key] == 0 \
                and depth == 0 \
                and not addr_is_private(op.addr, private_names):
            yield _finding(
                "nonatomic-shared-rmw", cfg, op.call,
                "store completes a plain read-modify-write on a "
                "shared address with no enclosing acquire/"
                "release — concurrent WGs lose updates",
            )
            del pending_loads[key]

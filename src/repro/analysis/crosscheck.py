"""Verdict cross-checking: static table vs. dynamic runs vs. DESIGN.md.

Soundness contract (the acceptance bar of the static analyzer):

* every dynamically observed deadlock must be statically
  ``MAY_DEADLOCK`` or ``UNKNOWN`` — a ``MUST_COMPLETE`` cell that
  deadlocks is an **unsound** prediction and fails the check;
* a policy the hand-written DESIGN.md IFP table marks ``no`` must not
  own any ``MUST_COMPLETE`` cell (the static table may not contradict
  the paper's table);
* the reverse direction — a ``MAY_DEADLOCK`` cell that completes — is
  *allowed* ("may" is not "must") but reported as pessimism when the
  DESIGN table says the policy provides IFP.

The dynamic side replays the differential suite's exact scenario
(:data:`DIFFERENTIAL_SCALE` knobs on ``QUICK_SCALE``), so the CI
cross-check and the tier-1 differential tests can never drift apart:
both import their scenario and policy list from here /
:func:`~repro.analysis.specs.table_policies`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.specs import (
    MAY_DEADLOCK,
    MUST_COMPLETE,
    UNKNOWN,
    table_policies,
)

#: the differential suite's oversubscription-after-CU-loss scenario
#: (8 WGs, 1 slot per CU, one CU lost mid-run) as ``QUICK_SCALE.scaled``
#: keyword arguments — kept as data so importing this module stays
#: simulator-free.
DIFFERENTIAL_SCALE = dict(
    total_wgs=8,
    wgs_per_group=4,
    max_wgs_per_cu=1,
    iterations=1,
    episodes=4,
    resource_loss_at_us=0.5,
    deadlock_window=100_000,
    label="differential",
)


def differential_scenario():
    """The scenario object (imports the simulator on first use)."""
    from repro.experiments import QUICK_SCALE

    return QUICK_SCALE.scaled(**DIFFERENTIAL_SCALE)


def canonical_policy_name(name: str) -> str:
    """Strip parameter suffixes: ``Timeout-20k`` -> ``Timeout``."""
    m = re.match(r"(Timeout|Sleep)\b", name)
    return m.group(1) if m else name


# -- DESIGN.md IFP table ------------------------------------------------------

def parse_design_ifp_table(path: str = "DESIGN.md") -> Dict[str, bool]:
    """Parse the hand-written policy table's ``IFP?`` column.

    Returns canonical policy name -> provides IFP (``yes``/``yes*`` ->
    True, ``no`` -> False). Raises if the table cannot be found — the
    cross-check must never silently skip its reference."""
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    out: Dict[str, bool] = {}
    for line in text.splitlines():
        if not line.strip().startswith("|"):
            continue
        cells = [c.strip() for c in line.strip().strip("|").split("|")]
        if len(cells) < 5:
            continue
        name = cells[0].strip("* ").strip()
        ifp = cells[-1].strip().lower()
        if name in ("Policy", "") or set(name) <= {"-"}:
            continue
        if ifp.startswith("yes"):
            out[name] = True
        elif ifp.startswith("no"):
            out[name] = False
    if not out:
        raise ValueError(f"no IFP table found in {path}")
    return out


# -- dynamic observation ------------------------------------------------------

def observed_outcomes(
    benches: Optional[Sequence[str]] = None,
    policies=None,
) -> Dict[Tuple[str, str], Dict]:
    """Run the differential scenario dynamically for every cell.

    Returns ``(bench, policy_name) -> {"ok", "deadlocked", "reason"}``.
    """
    from repro.experiments import run_benchmark
    from repro.workloads.registry import benchmark_names

    scenario = differential_scenario()
    benches = list(benches) if benches else benchmark_names()
    policies = list(policies) if policies else table_policies()
    out: Dict[Tuple[str, str], Dict] = {}
    for bench in benches:
        for policy in policies:
            result = run_benchmark(bench, policy, scenario, validate=False)
            out[(bench, policy.name)] = {
                "ok": bool(result.ok),
                "deadlocked": bool(result.deadlocked),
                "reason": result.reason or "",
            }
    return out


# -- the check ----------------------------------------------------------------

@dataclass
class CrosscheckReport:
    """Outcome of one static-vs-dynamic-vs-DESIGN comparison."""

    cells_checked: int = 0
    violations: List[str] = field(default_factory=list)  # unsound -> fail
    pessimism: List[str] = field(default_factory=list)  # allowed, reported

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict:
        return {
            "ok": self.ok,
            "cells_checked": self.cells_checked,
            "violations": list(self.violations),
            "pessimism": list(self.pessimism),
        }

    def render(self) -> str:
        lines = [f"cross-check: {self.cells_checked} cell(s)"]
        for v in self.violations:
            lines.append(f"  UNSOUND: {v}")
        for p in self.pessimism:
            lines.append(f"  pessimistic: {p}")
        lines.append("cross-check " + ("OK" if self.ok else "FAILED"))
        return "\n".join(lines)


def crosscheck(
    static_cells: Dict[Tuple[str, str], str],
    observed: Optional[Dict[Tuple[str, str], Dict]] = None,
    design_ifp: Optional[Dict[str, bool]] = None,
) -> CrosscheckReport:
    """Compare static verdicts against observations and the hand table.

    ``static_cells`` maps ``(bench, policy_name)`` to a verdict string.
    Either reference may be omitted (``None`` skips that comparison —
    the CLI always passes both).
    """
    report = CrosscheckReport()
    for (bench, policy), verdict in sorted(static_cells.items()):
        report.cells_checked += 1
        canon = canonical_policy_name(policy)
        obs = observed.get((bench, policy)) if observed else None
        if obs is not None:
            if obs["deadlocked"] and verdict == MUST_COMPLETE:
                report.violations.append(
                    f"{bench}/{policy}: static MUST_COMPLETE but the "
                    f"differential run deadlocked ({obs['reason']})")
            if obs["ok"] and verdict == MAY_DEADLOCK and \
                    design_ifp and design_ifp.get(canon, False):
                report.pessimism.append(
                    f"{bench}/{policy}: static MAY_DEADLOCK, but the run "
                    "completed and DESIGN.md grants the policy IFP")
        if design_ifp is not None and canon in design_ifp:
            if not design_ifp[canon] and verdict == MUST_COMPLETE:
                report.violations.append(
                    f"{bench}/{policy}: static MUST_COMPLETE contradicts "
                    "DESIGN.md IFP table entry 'no'")
    # A verdict string outside the vocabulary is a programming error.
    bad = {v for v in static_cells.values()
           if v not in (MUST_COMPLETE, MAY_DEADLOCK, UNKNOWN)}
    for v in sorted(bad):
        report.violations.append(f"unknown verdict value {v!r}")
    return report

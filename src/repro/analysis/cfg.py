"""Control-flow graphs over kernel-generator ASTs.

:func:`build_cfg` lowers one :class:`~repro.analysis.dsl.KernelFunction`
into basic blocks connected by typed edges. Synchronization points —
yields into ctx device ops, ``syncthreads``, mutex acquire/release,
SyncMon waits — terminate their block and continue over an explicit
``"sync"`` edge, so every dataflow pass observes exactly the program
points where the scheduler can intervene.

Lowering is total: ``break``/``continue``/``return``/``raise`` route
through any enclosing ``finally`` bodies (duplicated per exit path, the
classical lowering, so a release in a ``finally`` is visible on *every*
path out of the ``try``), exception edges approximate "the try body may
fault" with an edge from the try entry to each handler, and statement
kinds the builder does not model (e.g. ``match``) degrade to a linear
block plus a structured ``analysis-error`` finding — never a crash.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.dsl import (
    KernelFunction,
    SYNC_ENTRY_METHODS,
    WAIT_OPS,
    addr_arg,
    classify_call,
    dump,
    classify_call as _classify,  # noqa: F401  (re-export convenience)
)
from repro.analysis.findings import Finding

#: ops that end a basic block with an explicit sync edge
SYNC_POINT_OPS = frozenset(WAIT_OPS | {"syncthreads"})
SYNC_POINT_METHODS = frozenset(SYNC_ENTRY_METHODS | {"release"})

#: statement types lowered as straight-line code
_LINEAR_STMTS = (
    ast.Expr, ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Pass,
    ast.Import, ast.ImportFrom, ast.Global, ast.Nonlocal, ast.Assert,
    ast.Delete,
)


@dataclass
class DeviceOp:
    """One classified device-DSL call inside a basic block."""

    call: ast.Call
    group: str  # "ctx" | "sync"
    name: str
    delegated: bool  # driven by yield from / await / return
    addr: Optional[ast.AST]
    sym: str  # canonical dump of the address operand
    block: int = -1

    @property
    def line(self) -> int:
        return self.call.lineno

    @property
    def col(self) -> int:
        return self.call.col_offset

    @property
    def is_sync_point(self) -> bool:
        if self.group == "ctx" and self.name in SYNC_POINT_OPS:
            return True
        return self.group == "sync" and self.name in SYNC_POINT_METHODS


@dataclass
class Edge:
    src: int
    dst: int
    kind: str  # fall|true|false|loop|break|continue|return|raise|except|sync


@dataclass
class BasicBlock:
    bid: int
    label: str = ""
    stmts: List[ast.stmt] = field(default_factory=list)
    ops: List[DeviceOp] = field(default_factory=list)
    succs: List[Edge] = field(default_factory=list)
    preds: List[Edge] = field(default_factory=list)
    #: (test expr, polarity) pairs controlling entry to this block
    guards: Tuple[Tuple[ast.AST, bool], ...] = ()
    #: True for finally bodies re-lowered along an abrupt exit path
    dup: bool = False


@dataclass
class Loop:
    """One natural loop (single ``while``/``for`` statement)."""

    node: ast.stmt
    header: int
    blocks: Set[int]
    bounded: bool


@dataclass
class CFG:
    kfn: KernelFunction
    blocks: Dict[int, BasicBlock]
    entry: int
    exit: int
    loops: List[Loop]
    errors: List[Finding] = field(default_factory=list)

    def block(self, bid: int) -> BasicBlock:
        return self.blocks[bid]

    def ops(self, unique: bool = True) -> List[DeviceOp]:
        """Every device op, source order; duplicated ``finally``
        lowerings collapsed to one occurrence when ``unique``."""
        seen: Set[int] = set()
        out: List[DeviceOp] = []
        for bid in sorted(self.blocks):
            for op in self.blocks[bid].ops:
                if unique:
                    if id(op.call) in seen:
                        continue
                    seen.add(id(op.call))
                out.append(op)
        out.sort(key=lambda o: (o.line, o.col))
        return out

    def rpo(self) -> List[int]:
        """Reverse postorder over forward edges from the entry."""
        seen: Set[int] = set()
        order: List[int] = []

        def visit(bid: int) -> None:
            seen.add(bid)
            for edge in self.blocks[bid].succs:
                if edge.dst not in seen:
                    visit(edge.dst)
            order.append(bid)

        visit(self.entry)
        return list(reversed(order))

    def reachable(self, start: int) -> Set[int]:
        seen = {start}
        work = [start]
        while work:
            for edge in self.blocks[work.pop()].succs:
                if edge.dst not in seen:
                    seen.add(edge.dst)
                    work.append(edge.dst)
        return seen

    def check_well_formed(self) -> List[str]:
        """Structural invariants; an empty list means well-formed."""
        problems: List[str] = []
        for bid, block in self.blocks.items():
            for edge in block.succs:
                if edge.src != bid:
                    problems.append(f"edge {edge} listed under block {bid}")
                if edge.dst not in self.blocks:
                    problems.append(f"edge {edge} targets unknown block")
                if edge not in self.blocks[edge.dst].preds:
                    problems.append(f"edge {edge} missing from dst preds")
            if bid != self.exit and not block.succs:
                problems.append(f"block {bid} is a dead end (no successors)")
        if self.exit not in self.reachable(self.entry):
            problems.append("exit unreachable from entry")
        return problems


def _is_bounded_iter(node: ast.For) -> bool:
    """``for`` over range(...) or a literal sequence terminates."""
    it = node.iter
    if isinstance(it, ast.Call) and isinstance(it.func, ast.Name) and \
            it.func.id in ("range", "enumerate", "zip", "reversed", "sorted"):
        return True
    return isinstance(it, (ast.List, ast.Tuple, ast.Constant))


def _const_true(test: ast.AST) -> bool:
    return isinstance(test, ast.Constant) and bool(test.value) is True


class _Builder:
    def __init__(self, kfn: KernelFunction) -> None:
        self.kfn = kfn
        self.blocks: Dict[int, BasicBlock] = {}
        self.loops: List[Loop] = []
        self.errors: List[Finding] = []
        self.own_nodes: Set[int] = {id(n) for n in kfn.nodes}
        #: (continue target, break join, finally depth at loop entry)
        self.loop_stack: List[Tuple[int, int, int]] = []
        #: pending finally bodies, innermost last
        self.finally_stack: List[List[ast.stmt]] = []
        self.guard_stack: List[Tuple[ast.AST, bool]] = []
        self._dup_depth = 0
        self.exit = self.new_block("exit")

    # -- plumbing ----------------------------------------------------

    def new_block(self, label: str = "") -> int:
        bid = len(self.blocks)
        self.blocks[bid] = BasicBlock(
            bid=bid, label=label, guards=tuple(self.guard_stack),
            dup=self._dup_depth > 0)
        return bid

    def edge(self, src: int, dst: int, kind: str = "fall") -> None:
        e = Edge(src, dst, kind)
        self.blocks[src].succs.append(e)
        self.blocks[dst].preds.append(e)

    def _error(self, node: ast.AST, message: str) -> None:
        self.errors.append(Finding(
            rule_id="analysis-error", severity="warning",
            path=self.kfn.path, line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1, message=message,
            hint="the CFG treats this statement as straight-line code; "
                 "rewrite it with if/while/for/try so the analyzer can "
                 "model its control flow",
            function=self.kfn.name,
            def_line=self.kfn.node.lineno,
        ))

    # -- op extraction -----------------------------------------------

    def _collect_ops(self, stmt: ast.stmt, shallow: bool = False) -> List[DeviceOp]:
        """Device ops inside ``stmt``'s own expressions.

        ``shallow`` restricts to the statement's immediate expressions
        (used for compound statements whose bodies are lowered
        separately — only the test/iter expressions belong here).
        """
        if shallow:
            roots: List[ast.AST] = []
            if isinstance(stmt, (ast.If, ast.While)):
                roots = [stmt.test]
            elif isinstance(stmt, ast.For):
                roots = [stmt.iter]
            elif isinstance(stmt, ast.Return) and stmt.value is not None:
                roots = [stmt.value]
        else:
            roots = [stmt]
        ops: List[DeviceOp] = []
        for root in roots:
            for node in ast.walk(root):
                if not isinstance(node, ast.Call) or id(node) not in self.own_nodes:
                    continue
                kind = classify_call(node, self.kfn.ctx_names)
                if kind is None:
                    continue
                group, name = kind
                addr = addr_arg(node, name) if group == "ctx" else None
                ops.append(DeviceOp(
                    call=node, group=group, name=name,
                    delegated=self._is_delegated(node),
                    addr=addr, sym=dump(addr),
                ))
        ops.sort(key=lambda o: (o.line, o.col))
        return ops

    def _is_delegated(self, call: ast.Call) -> bool:
        for anc in self.kfn.parent_chain(call):
            if isinstance(anc, (ast.YieldFrom, ast.Await)):
                return True
            if isinstance(anc, ast.Return):
                return True  # `return ctx.op(...)` delegates to the caller
            if isinstance(anc, ast.stmt):
                break
        return False

    def _append_stmt(self, cur: int, stmt: ast.stmt,
                     shallow: bool = False) -> int:
        """Add one statement's ops to ``cur``; split after sync points."""
        block = self.blocks[cur]
        block.stmts.append(stmt)
        ops = self._collect_ops(stmt, shallow=shallow)
        has_sync = False
        for op in ops:
            op.block = cur
            block.ops.append(op)
            if op.is_sync_point:
                has_sync = True
        if has_sync:
            nxt = self.new_block()
            self.edge(cur, nxt, "sync")
            return nxt
        return cur

    # -- statement lowering ------------------------------------------

    def lower_body(self, stmts: Sequence[ast.stmt],
                   cur: Optional[int]) -> Optional[int]:
        for stmt in stmts:
            if cur is None:
                # Unreachable code after a jump still gets a block so
                # its findings (dropped ops etc.) are not lost.
                cur = self.new_block("unreachable")
            cur = self.lower_stmt(stmt, cur)
        return cur

    def lower_stmt(self, stmt: ast.stmt, cur: int) -> Optional[int]:
        if isinstance(stmt, _LINEAR_STMTS):
            return self._append_stmt(cur, stmt)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return cur  # nested defs are their own KernelFunctions
        if isinstance(stmt, ast.If):
            return self._lower_if(stmt, cur)
        if isinstance(stmt, ast.While):
            return self._lower_while(stmt, cur)
        if isinstance(stmt, ast.For):
            return self._lower_for(stmt, cur)
        if isinstance(stmt, ast.Try):
            return self._lower_try(stmt, cur)
        if isinstance(stmt, ast.With):
            cur = self._append_stmt(cur, stmt, shallow=True)
            return self.lower_body(stmt.body, cur)
        if isinstance(stmt, ast.Return):
            cur = self._append_stmt(cur, stmt)
            cur = self._run_finallies(cur, 0)
            self.edge(cur, self.exit, "return")
            return None
        if isinstance(stmt, ast.Raise):
            cur = self._append_stmt(cur, stmt)
            cur = self._run_finallies(cur, 0)
            self.edge(cur, self.exit, "raise")
            return None
        if isinstance(stmt, ast.Break):
            if not self.loop_stack:
                self._error(stmt, "break outside any loop")
                return cur
            _, join, depth = self.loop_stack[-1]
            cur = self._run_finallies(cur, depth)
            self.edge(cur, join, "break")
            return None
        if isinstance(stmt, ast.Continue):
            if not self.loop_stack:
                self._error(stmt, "continue outside any loop")
                return cur
            header, _, depth = self.loop_stack[-1]
            cur = self._run_finallies(cur, depth)
            self.edge(cur, header, "continue")
            return None
        # Anything else (match, async constructs, ...): straight-line
        # approximation + structured finding, never a crash.
        self._error(stmt, f"unmodeled control flow: "
                          f"{type(stmt).__name__} lowered as a "
                          f"straight-line statement")
        return self._append_stmt(cur, stmt)

    def _lower_if(self, stmt: ast.If, cur: int) -> Optional[int]:
        cur = self._append_stmt(cur, stmt, shallow=True)
        join = self.new_block("if-join")
        self.guard_stack.append((stmt.test, True))
        then_entry = self.new_block("then")
        self.edge(cur, then_entry, "true")
        then_exit = self.lower_body(stmt.body, then_entry)
        self.guard_stack.pop()
        if then_exit is not None:
            self.edge(then_exit, join, "fall")
        if stmt.orelse:
            self.guard_stack.append((stmt.test, False))
            else_entry = self.new_block("else")
            self.edge(cur, else_entry, "false")
            else_exit = self.lower_body(stmt.orelse, else_entry)
            self.guard_stack.pop()
            if else_exit is not None:
                self.edge(else_exit, join, "fall")
        else:
            self.edge(cur, join, "false")
        if not self.blocks[join].preds:
            return None  # both arms jumped away
        return join

    def _lower_loop(self, stmt, cur: int, header: int,
                    bounded: bool) -> Optional[int]:
        join = self.new_block("loop-join")
        before = set(self.blocks)
        self.loop_stack.append((header, join, len(self.finally_stack)))
        guard_expr = stmt.test if isinstance(stmt, ast.While) else stmt.iter
        self.guard_stack.append((guard_expr, True))
        body_entry = self.new_block("loop-body")
        self.edge(header, body_entry, "true")
        body_exit = self.lower_body(stmt.body, body_entry)
        self.guard_stack.pop()
        self.loop_stack.pop()
        if body_exit is not None:
            self.edge(body_exit, header, "loop")
        loop_blocks = (set(self.blocks) - before) | {header}
        loop_blocks.discard(join)
        if stmt.orelse:
            else_exit = self.lower_body(stmt.orelse, self.new_block("loop-else"))
            else_entry = min((set(self.blocks) - before) - loop_blocks - {join})
            self.edge(header, else_entry, "false")
            if else_exit is not None:
                self.edge(else_exit, join, "fall")
        elif not (isinstance(stmt, ast.While) and _const_true(stmt.test)):
            self.edge(header, join, "false")
        self.loops.append(Loop(node=stmt, header=header,
                               blocks=loop_blocks, bounded=bounded))
        if not self.blocks[join].preds:
            return None  # `while True` with no break
        return join

    def _lower_while(self, stmt: ast.While, cur: int) -> Optional[int]:
        header = self.new_block("while")
        self.edge(cur, header, "fall")
        header = self._append_stmt(header, stmt, shallow=True)
        return self._lower_loop(stmt, cur, header, bounded=False)

    def _lower_for(self, stmt: ast.For, cur: int) -> Optional[int]:
        header = self.new_block("for")
        self.edge(cur, header, "fall")
        header = self._append_stmt(header, stmt, shallow=True)
        return self._lower_loop(stmt, cur, header,
                                bounded=_is_bounded_iter(stmt))

    def _lower_try(self, stmt: ast.Try, cur: int) -> Optional[int]:
        try_entry = self.new_block("try")
        self.edge(cur, try_entry, "fall")
        if stmt.finalbody:
            self.finally_stack.append(stmt.finalbody)
        body_exit = self.lower_body(stmt.body, try_entry)
        if body_exit is not None and stmt.orelse:
            body_exit = self.lower_body(stmt.orelse, body_exit)
        handler_exits: List[int] = []
        for handler in stmt.handlers:
            h_entry = self.new_block("except")
            # Approximation: the try body may fault at its entry point.
            self.edge(try_entry, h_entry, "except")
            h_exit = self.lower_body(handler.body, h_entry)
            if h_exit is not None:
                handler_exits.append(h_exit)
        if stmt.finalbody:
            self.finally_stack.pop()
            fin_entry = self.new_block("finally")
            fin_exit = self.lower_body(stmt.finalbody, fin_entry)
            if body_exit is not None:
                self.edge(body_exit, fin_entry, "fall")
            for h_exit in handler_exits:
                self.edge(h_exit, fin_entry, "fall")
            if not stmt.handlers:
                # An unhandled exception still runs the finally.
                self.edge(try_entry, fin_entry, "except")
            if fin_exit is None:
                return None
            if not self.blocks[fin_entry].preds:
                return None
            return fin_exit
        join = self.new_block("try-join")
        joined = False
        if body_exit is not None:
            self.edge(body_exit, join, "fall")
            joined = True
        for h_exit in handler_exits:
            self.edge(h_exit, join, "fall")
            joined = True
        return join if joined else None

    def _run_finallies(self, cur: int, upto: int) -> int:
        """Route an abrupt exit through pending finally bodies
        (innermost first), duplicating their lowering on this path."""
        self._dup_depth += 1
        for finalbody in reversed(self.finally_stack[upto:]):
            entry = self.new_block("finally-dup")
            self.edge(cur, entry, "fall")
            out = self.lower_body(finalbody, entry)
            if out is None:  # the finally itself jumped away
                self._dup_depth -= 1
                return self.new_block("finally-noreturn")
            cur = out
        self._dup_depth -= 1
        return cur


def build_cfg(kfn: KernelFunction) -> CFG:
    """Lower one kernel function into a CFG. Never raises on weird
    input: unmodeled statements degrade to straight-line blocks plus an
    ``analysis-error`` finding."""
    builder = _Builder(kfn)
    entry = builder.new_block("entry")
    try:
        last = builder.lower_body(kfn.node.body, entry)
        if last is not None:
            builder.edge(last, builder.exit, "fall")
    except RecursionError:  # pragma: no cover - pathological nesting
        builder._error(kfn.node, "function too deeply nested to lower")
        builder.edge(entry, builder.exit, "fall")
    cfg = CFG(kfn=kfn, blocks=builder.blocks, entry=entry,
              exit=builder.exit, loops=builder.loops,
              errors=builder.errors)
    # Prune truly disconnected empty helper blocks (e.g. an if-join both
    # of whose arms returned) so well-formedness checks stay meaningful.
    reachable = cfg.reachable(cfg.entry)
    for bid in list(cfg.blocks):
        if bid in reachable or bid == cfg.exit:
            continue
        block = cfg.blocks[bid]
        if not block.stmts and not block.preds and not block.succs:
            del cfg.blocks[bid]
    return cfg


def cfgs_for_source(source: str, path: str) -> Iterator[CFG]:
    """Parse ``source`` and build one CFG per kernel function."""
    from repro.analysis.dsl import iter_kernel_functions

    tree = ast.parse(source, filename=path)
    for kfn in iter_kernel_functions(tree, path):
        yield build_cfg(kfn)

"""Executable progress specs: what each scheduling policy guarantees.

The paper's progress argument has three layers, and this module encodes
them as checkable rules rather than prose:

1. **The occupancy slot cycle.** Under a non-IFP scheduler (Baseline,
   Sleep) a waiting WG keeps its compute-unit slot; if the WG that must
   satisfy the wait is not yet dispatched, the wait-for graph closes a
   cycle through the dispatch queue and no execution breaks it (§IV.B).
   ``provides_ifp`` is exactly the license to context-switch waiting
   WGs out, cutting that edge.

2. **Raw spins are invisible.** A poll loop that never enters a blessed
   wait (``ctx.sync_wait`` and friends) never tells the policy it is
   blocked — *no* policy, IFP or not, can lower it, so it inherits the
   slot-cycle hazard everywhere.

3. **Wake-loss modes must be covered by a recovery timer.** Monitor
   policies can lose wakeups: the §IV.C window of vulnerability
   (wait-instruction policies arming after a racing update), monitor
   state dropped on WG eviction under resource loss, ``resume one``
   stranding extra waiters on a multi-waiter word, and AWG resume-count
   mispredictions. Every mode needs a covering timer — the backstop
   timeout or the straggler/retry interval — or the cell is
   ``MAY_DEADLOCK``.

A cell verdict is the worst over the benchmark's wait sites:
``MAY_DEADLOCK`` > ``UNKNOWN`` > ``MUST_COMPLETE``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.policies import (
    NotifyMode,
    PolicySpec,
    ResumeMode,
    awg,
    baseline,
    minresume,
    monnr_all,
    monnr_one,
    monr_all,
    monrs_all,
    timeout,
)

# -- verdicts -----------------------------------------------------------------

MUST_COMPLETE = "MUST_COMPLETE"
MAY_DEADLOCK = "MAY_DEADLOCK"
UNKNOWN = "UNKNOWN"

#: severity order for folding site verdicts into one cell verdict
_ORDER = {MUST_COMPLETE: 0, UNKNOWN: 1, MAY_DEADLOCK: 2}


def worst(verdicts: Sequence[str]) -> str:
    return max(verdicts, key=lambda v: _ORDER[v]) if verdicts else MUST_COMPLETE


# -- the policies of the static table ----------------------------------------

def table_policies() -> List[PolicySpec]:
    """The 8 policies of the differential suite and the static table —
    one non-IFP baseline plus the paper's seven IFP designs (§IV).

    The dynamic differential suite imports this list so the static and
    dynamic tables can never drift apart.
    """
    return [
        baseline(),
        timeout(20_000),
        monrs_all(),
        monr_all(),
        monnr_all(),
        monnr_one(),
        awg(),
        minresume(),
    ]


# -- wait-site profile (produced by the progress pass) ------------------------

@dataclass(frozen=True)
class WaitProfile:
    """The policy-relevant facts about one wait site."""

    label: str  # "SpinMutex.acquire:lock_addr"
    kind: str  # busy-spin | blocking-wait | interval-wait
    #: update fused into the wait (waiting-atomic shape, §IV.D) — no
    #: window of vulnerability under any mechanism
    fused: bool = False
    #: `satisfied=` monotonic predicate — Mesa-safe re-checks
    monotonic: bool = False
    #: at most one WG parked per word (Table 2 "waiters per cond = 1")
    single_waiter: bool = False
    #: a satisfying writer was found (statically matched or hinted)
    matched: bool = True


@dataclass(frozen=True)
class SiteVerdict:
    site: str
    verdict: str
    reasons: Tuple[str, ...]


@dataclass
class CellVerdict:
    """One (benchmark, policy) cell of the static table."""

    bench: str
    policy: str
    verdict: str
    sites: List[SiteVerdict] = field(default_factory=list)

    @property
    def reasons(self) -> List[str]:
        out: List[str] = []
        for sv in self.sites:
            if _ORDER[sv.verdict] == _ORDER[self.verdict]:
                out.extend(sv.reasons)
        return out

    def to_dict(self) -> Dict:
        return {
            "bench": self.bench,
            "policy": self.policy,
            "verdict": self.verdict,
            "sites": [
                {"site": s.site, "verdict": s.verdict,
                 "reasons": list(s.reasons)}
                for s in self.sites
            ],
        }


# -- the spec itself ----------------------------------------------------------

def _covering_timer(policy: PolicySpec) -> Optional[str]:
    """The recovery timer that re-evaluates a lost wait, if any."""
    if policy.backstop_timeout is not None:
        return f"backstop_timeout={policy.backstop_timeout}"
    if policy.timeout_interval is not None:
        return f"timeout_interval={policy.timeout_interval}"
    return None


def _straggler_timer(policy: PolicySpec) -> Optional[str]:
    """The timer that frees a stranded-but-armed waiter (resume-one
    stragglers, misprediction stalls): the retry interval if present,
    else the backstop."""
    if policy.timeout_interval is not None:
        return f"timeout_interval={policy.timeout_interval}"
    if policy.backstop_timeout is not None:
        return f"backstop_timeout={policy.backstop_timeout}"
    return None


def site_verdict(policy: PolicySpec, profile: WaitProfile) -> SiteVerdict:
    """Classify one wait site under one policy."""
    reasons: List[str] = []

    # Layer 2: raw spins defeat every policy.
    if profile.kind == "busy-spin":
        return SiteVerdict(
            site=profile.label, verdict=MAY_DEADLOCK,
            reasons=(f"{profile.label}: raw poll loop never enters a "
                     "blessed wait — the WG holds its CU slot under every "
                     "policy and the slot cycle is unbreakable",))

    # Layer 1: the occupancy slot cycle.
    if not policy.provides_ifp:
        return SiteVerdict(
            site=profile.label, verdict=MAY_DEADLOCK,
            reasons=(f"{profile.label}: {policy.name} never context-"
                     "switches a waiting WG, so under oversubscription the "
                     "wait-for edge closes a cycle through the dispatch "
                     "queue (occupancy-bound, §IV.B)",))

    # No statically known writer: we cannot argue completion.
    if not profile.matched:
        return SiteVerdict(
            site=profile.label, verdict=UNKNOWN,
            reasons=(f"{profile.label}: no satisfying writer statically "
                     "matched for this wait (computed address without a "
                     "role hint?)",))

    # Layer 3: enumerate wake-loss modes and their covering timers.
    uncovered: List[str] = []

    def need(mode: str, timer: Optional[str]) -> None:
        if timer is None:
            uncovered.append(mode)
        else:
            reasons.append(f"{mode} covered by {timer}")

    if policy.has_race_window and not profile.fused:
        need("window-of-vulnerability (§IV.C: update lands between "
             "check and wait arming)", _covering_timer(policy))
    if policy.uses_monitor:
        need("monitor-state loss on WG eviction (resource loss)",
             _covering_timer(policy))
    else:
        # Timeout: no monitor at all — *every* wakeup is timer-driven.
        need("no notification path (timer-only wakeups)",
             _straggler_timer(policy))
    if policy.resume is ResumeMode.ONE and not profile.single_waiter:
        need("resume-one stranding (multiple waiters, one resumed)",
             _straggler_timer(policy))
    if policy.resume is ResumeMode.PREDICT:
        need("resume-count misprediction (Bloom predictor)",
             _straggler_timer(policy))
    if policy.notify is NotifyMode.SPORADIC and not profile.monotonic \
            and not profile.fused:
        # Sporadic notification re-checks on *any* touch; an exact
        # re-check can observe a transient value and re-arm. The
        # monotonic episode-counter design (or a fused RMW retry)
        # makes the re-check safe; otherwise the backstop recovers.
        need("sporadic-notify transient re-arm on exact re-check",
             _covering_timer(policy))

    if uncovered:
        return SiteVerdict(
            site=profile.label, verdict=MAY_DEADLOCK,
            reasons=tuple(f"{profile.label}: {m} has no covering "
                          "recovery timer" for m in uncovered))
    return SiteVerdict(site=profile.label, verdict=MUST_COMPLETE,
                       reasons=tuple(f"{profile.label}: {r}"
                                     for r in reasons))


def cell_verdict(bench: str, policy: PolicySpec,
                 profiles: Sequence[WaitProfile],
                 analysis_errors: Sequence[str] = ()) -> CellVerdict:
    """Fold a benchmark's wait sites into one table cell."""
    sites = [site_verdict(policy, p) for p in profiles]
    if analysis_errors:
        sites.append(SiteVerdict(
            site="<analysis>", verdict=UNKNOWN,
            reasons=tuple(analysis_errors)))
    if not sites:
        sites.append(SiteVerdict(
            site="<none>", verdict=UNKNOWN,
            reasons=("no wait sites found — nothing to argue progress "
                     "over",)))
    return CellVerdict(
        bench=bench, policy=policy.name,
        verdict=worst([s.verdict for s in sites]),
        sites=sites,
    )

"""The progress-dependency pass: static wait-for graphs per benchmark.

For every shipped benchmark the pass

1. resolves its :class:`~repro.workloads.roles.SyncProtocol` to the
   kernel functions that implement it (the heterosync body plus the
   sync-primitive methods, found by qualified name in the protocol
   source modules),
2. builds their CFGs, runs the dataflow passes, and extracts every
   *wait site* (blessed waits and raw poll loops) and every shared
   *write site*,
3. matches each wait to the writes that can satisfy it by storage
   family (``self.lock_addr`` ↔ ``atomic_exch(self.lock_addr, 0)``),
   consulting :func:`~repro.workloads.roles.kernel_roles` hints where
   the address is computed (``self._slot(ticket)``), and
4. assigns work-group *roles* to both ends — from hints, or inferred
   from role-divergent guards (``is_group_leader(...)``, ``group ==
   0``) — yielding a wait-for graph between roles plus one
   :class:`~repro.analysis.specs.WaitProfile` per site for the policy
   specs to judge.

Everything here is pure ``ast``: the protocol sources are parsed, never
imported, so the analyzer runs on a checkout without the simulator.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.cfg import CFG, build_cfg
from repro.analysis.dataflow import (
    BUSY_SPIN,
    WaitSite,
    WriteSite,
    classify_waits,
    collect_writes,
)
from repro.analysis.dsl import iter_kernel_functions
from repro.analysis.findings import Finding
from repro.analysis.specs import WaitProfile

#: modules whose sources carry every shipped protocol
PROTOCOL_MODULES = (
    "repro.workloads.heterosync",
    "repro.sync.mutex",
    "repro.sync.barrier",
)


# -- decorator hints (parsed from the AST, not imported) ----------------------

@dataclass(frozen=True)
class ParsedHint:
    base: str
    waiter: str
    updater: str
    single_waiter: bool = False


@dataclass(frozen=True)
class ParsedRoles:
    roles: Tuple[str, ...] = ()
    hints: Tuple[ParsedHint, ...] = ()


def _const(node: ast.AST):
    return node.value if isinstance(node, ast.Constant) else None


def _parse_kernel_roles(fn: ast.FunctionDef) -> ParsedRoles:
    for dec in fn.decorator_list:
        if not (isinstance(dec, ast.Call) and
                isinstance(dec.func, ast.Name) and
                dec.func.id == "kernel_roles"):
            continue
        roles = tuple(v for v in (_const(a) for a in dec.args)
                      if isinstance(v, str))
        hints: List[ParsedHint] = []
        for kw in dec.keywords:
            if kw.arg != "waits" or not isinstance(kw.value, ast.Tuple):
                continue
            for elt in kw.value.elts:
                if not (isinstance(elt, ast.Call) and
                        isinstance(elt.func, ast.Name) and
                        elt.func.id == "WaitHint"):
                    continue
                base = _const(elt.args[0]) if elt.args else None
                kv = {k.arg: _const(k.value) for k in elt.keywords}
                if isinstance(base, str):
                    hints.append(ParsedHint(
                        base=base,
                        waiter=str(kv.get("waiter", "waiter")),
                        updater=str(kv.get("updater", "updater")),
                        single_waiter=bool(kv.get("single_waiter", False)),
                    ))
        return ParsedRoles(roles=roles, hints=tuple(hints))
    return ParsedRoles()


# -- protocol source index ----------------------------------------------------

@dataclass
class ProtocolFunction:
    qualname: str
    cfg: CFG
    roles: ParsedRoles
    waits: List[WaitSite] = field(default_factory=list)
    writes: List[WriteSite] = field(default_factory=list)


def _module_path(module: str) -> str:
    import importlib.util

    spec = importlib.util.find_spec(module)
    if spec is None or not spec.origin:  # pragma: no cover - broken install
        raise FileNotFoundError(f"cannot locate source of {module}")
    return spec.origin


@lru_cache(maxsize=None)
def _index_module(module: str) -> Tuple[ProtocolFunction, ...]:
    path = _module_path(module)
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    tree = ast.parse(source, filename=path)
    out: List[ProtocolFunction] = []
    for kfn in iter_kernel_functions(tree, os.path.relpath(path)):
        cfg = build_cfg(kfn)
        pf = ProtocolFunction(
            qualname=kfn.qualname, cfg=cfg,
            roles=_parse_kernel_roles(kfn.node),
            waits=classify_waits(cfg),
            writes=collect_writes(cfg),
        )
        out.append(pf)
    return tuple(out)


def protocol_functions() -> Dict[str, ProtocolFunction]:
    """qualname -> analyzed function, across all protocol modules."""
    index: Dict[str, ProtocolFunction] = {}
    for module in PROTOCOL_MODULES:
        for pf in _index_module(module):
            index[pf.qualname] = pf
    return index


# -- role inference -----------------------------------------------------------

def _guard_role(guards, default: str) -> str:
    """Role implied by role-divergent guards, innermost decision last.

    ``is_group_leader(...)`` splits leader/member; a ``== 0`` group test
    inside the leader branch elects the root.
    """
    role = default
    for test, polarity in guards:
        names = {n.attr for n in ast.walk(test)
                 if isinstance(n, ast.Attribute)}
        names |= {n.id for n in ast.walk(test) if isinstance(n, ast.Name)}
        if "is_group_leader" in names:
            role = "leader" if polarity else "member"
        elif role == "leader" and isinstance(test, ast.Compare) and \
                any(isinstance(c, ast.Constant) and c.value == 0
                    for c in test.comparators):
            role = "root" if polarity else "leader"
    return role


# -- the wait-for graph -------------------------------------------------------

@dataclass
class WaitForEdge:
    """``waiter`` cannot progress until ``updater`` writes ``base``."""

    waiter: str
    updater: str
    base: str
    function: str  # qualname holding the wait
    line: int
    matched: bool
    hinted: bool
    profile: WaitProfile


@dataclass
class ProtocolAnalysis:
    """Everything the static table needs about one benchmark."""

    bench: str
    kind: str
    primitive: str
    decentralized: bool
    functions: List[str]
    edges: List[WaitForEdge]
    errors: List[str]

    @property
    def profiles(self) -> List[WaitProfile]:
        return [e.profile for e in self.edges]

    def to_dict(self) -> Dict:
        return {
            "bench": self.bench,
            "kind": self.kind,
            "primitive": self.primitive,
            "decentralized": self.decentralized,
            "functions": list(self.functions),
            "edges": [
                {
                    "waiter": e.waiter, "updater": e.updater,
                    "base": e.base, "function": e.function,
                    "line": e.line, "matched": e.matched,
                    "hinted": e.hinted, "kind": e.profile.kind,
                    "single_waiter": e.profile.single_waiter,
                }
                for e in self.edges
            ],
            "errors": list(self.errors),
        }


def _default_roles(kind: str) -> Tuple[str, str]:
    """(waiter default, updater default) for a protocol kind."""
    if kind == "mutex":
        return ("contender", "holder")
    return ("member", "leader")


def _is_indirect(site: WaitSite) -> bool:
    """Computed wait addresses (method calls) defeat base matching
    unless a hint vouches for them."""
    op = site.op
    if op is None or op.addr is None:
        return False
    return isinstance(op.addr, ast.Call)


def analyze_benchmark(bench: str) -> ProtocolAnalysis:
    """Static wait-for analysis of one shipped benchmark."""
    from repro.workloads.registry import get_spec

    spec = get_spec(bench)
    protocol = spec.protocol
    if protocol is None:
        return ProtocolAnalysis(
            bench=bench, kind=spec.category, primitive="",
            decentralized=False, functions=[], edges=[],
            errors=[f"{bench}: no SyncProtocol on the spec "
                    "(stress drill?)"])
    index = protocol_functions()
    wanted: List[ProtocolFunction] = []
    body_qual = f"{protocol.body_builder}.body"
    if body_qual in index:
        wanted.append(index[body_qual])
    for qual, pf in sorted(index.items()):
        if protocol.primitive and qual.startswith(protocol.primitive + "."):
            wanted.append(pf)
    errors: List[str] = []
    if not wanted:
        errors.append(f"{bench}: no protocol functions found for "
                      f"{protocol.primitive!r} / {body_qual!r}")

    # Pool every write and hint across the protocol's functions: the
    # satisfying write usually lives in a *different* method than the
    # wait (release vs acquire).
    writes_by_base: Dict[str, List[Tuple[str, WriteSite]]] = {}
    hints_by_base: Dict[str, ParsedHint] = {}
    waiter_default, updater_default = _default_roles(protocol.kind)
    for pf in wanted:
        for w in pf.writes:
            writes_by_base.setdefault(w.base, []).append((pf.qualname, w))
        for h in pf.roles.hints:
            hints_by_base[h.base] = h
        for finding in pf.cfg.errors:
            errors.append(f"{pf.qualname}: {finding.message}")

    edges: List[WaitForEdge] = []
    for pf in wanted:
        for site in pf.waits:
            if site.kind == BUSY_SPIN:
                label = f"{pf.qualname}:spin@L{site.line}"
                edges.append(WaitForEdge(
                    waiter=_guard_role(site.guards, waiter_default),
                    updater="<memory>", base="|".join(site.polls) or "?",
                    function=pf.qualname, line=site.line,
                    matched=False, hinted=False,
                    profile=WaitProfile(label=label, kind=BUSY_SPIN),
                ))
                continue
            hint = hints_by_base.get(site.base)
            indirect = _is_indirect(site)
            writers = writes_by_base.get(site.base, [])
            matched = bool(writers) and (not indirect or hint is not None)
            if hint is not None:
                waiter, updater = hint.waiter, hint.updater
            else:
                waiter = _guard_role(site.guards, waiter_default)
                updater = updater_default
                for wq, w in writers:
                    if wq != pf.qualname or w.guards != site.guards:
                        updater = _guard_role(w.guards, updater_default)
                        break
            single = site.exclusive or site.private_indexed or \
                bool(hint and hint.single_waiter)
            label = f"{pf.qualname}:{site.base}"
            edges.append(WaitForEdge(
                waiter=waiter, updater=updater, base=site.base,
                function=pf.qualname, line=site.line,
                matched=matched, hinted=hint is not None,
                profile=WaitProfile(
                    label=label, kind=site.kind,
                    fused=site.fused, monotonic=site.monotonic,
                    single_waiter=single, matched=matched,
                ),
            ))
    return ProtocolAnalysis(
        bench=bench, kind=protocol.kind, primitive=protocol.primitive,
        decentralized=protocol.decentralized,
        functions=[pf.qualname for pf in wanted],
        edges=edges, errors=errors,
    )


def render_dot(analyses: Sequence[ProtocolAnalysis]) -> str:
    """GraphViz rendering of the role wait-for graphs."""
    lines = ["digraph waitfor {", "  rankdir=LR;",
             "  node [shape=box, fontname=monospace];"]
    for pa in analyses:
        lines.append(f"  subgraph cluster_{pa.bench} {{")
        lines.append(f'    label="{pa.bench} ({pa.primitive or pa.kind})";')
        seen: Set[Tuple[str, str, str]] = set()
        for e in pa.edges:
            key = (e.waiter, e.updater, e.base)
            if key in seen:
                continue
            seen.add(key)
            style = "solid" if e.matched else "dashed"
            lines.append(
                f'    "{pa.bench}.{e.waiter}" -> "{pa.bench}.{e.updater}"'
                f' [label="{e.base}", style={style}];')
        for role in {e.waiter for e in pa.edges} | \
                {e.updater for e in pa.edges}:
            lines.append(
                f'    "{pa.bench}.{role}" [label="{role}"];')
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines)

"""The static progress table: benchmarks × policies, fully assembled.

Glue layer over the pipeline ``cfg -> dataflow -> progress -> specs``:
build one :class:`~repro.analysis.progress.ProtocolAnalysis` per
benchmark, judge every wait-site profile under every table policy, and
fold the results into an :class:`AnalysisReport` with renderers for the
CLI (``--table`` / ``--json`` / ``--dot``), a committed-golden diff for
CI (``analysis-table.json``), and the dynamic/DESIGN cross-check.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis import crosscheck as xcheck
from repro.analysis.progress import (
    ProtocolAnalysis,
    analyze_benchmark,
    render_dot,
)
from repro.analysis.specs import (
    CellVerdict,
    MAY_DEADLOCK,
    MUST_COMPLETE,
    UNKNOWN,
    cell_verdict,
    table_policies,
)

#: golden-file schema version; bump on any structural change so a stale
#: committed golden fails loudly instead of diffing confusingly.
GOLDEN_VERSION = 1

#: short verdict labels for the ASCII table
_ABBREV = {MUST_COMPLETE: "must", MAY_DEADLOCK: "MAY-DL", UNKNOWN: "?"}


@dataclass
class AnalysisReport:
    """Everything ``repro analyze`` can print or diff."""

    benchmarks: List[str]
    policies: List[str]
    analyses: List[ProtocolAnalysis]
    cells: Dict[Tuple[str, str], CellVerdict] = field(default_factory=dict)

    @property
    def verdicts(self) -> Dict[Tuple[str, str], str]:
        return {key: cell.verdict for key, cell in self.cells.items()}

    @property
    def errors(self) -> List[str]:
        out: List[str] = []
        for pa in self.analyses:
            out.extend(pa.errors)
        return out

    def to_dict(self) -> Dict:
        return {
            "version": GOLDEN_VERSION,
            "benchmarks": list(self.benchmarks),
            "policies": list(self.policies),
            "table": {
                bench: {
                    policy: self.cells[(bench, policy)].verdict
                    for policy in self.policies
                }
                for bench in self.benchmarks
            },
            "cells": [self.cells[(b, p)].to_dict()
                      for b in self.benchmarks for p in self.policies],
            "graphs": [pa.to_dict() for pa in self.analyses],
        }

    def golden_dict(self) -> Dict:
        """The stable subset committed as ``analysis-table.json``.

        Verdicts only — no line numbers or reason strings, so routine
        refactors of the protocol sources do not churn the golden."""
        full = self.to_dict()
        return {
            "version": full["version"],
            "benchmarks": full["benchmarks"],
            "policies": full["policies"],
            "table": full["table"],
        }

    def render_table(self) -> str:
        width = max(len(b) for b in self.benchmarks) if self.benchmarks else 8
        cols = [
            (p, max(len(p), max(len(_ABBREV[self.cells[(b, p)].verdict])
                                for b in self.benchmarks)))
            for p in self.policies
        ] if self.benchmarks else [(p, len(p)) for p in self.policies]
        lines = [" ".join([" " * width] +
                          [p.rjust(w) for p, w in cols])]
        for bench in self.benchmarks:
            row = [bench.ljust(width)]
            for policy, w in cols:
                row.append(_ABBREV[self.cells[(bench, policy)].verdict]
                           .rjust(w))
            lines.append(" ".join(row))
        counts = {v: 0 for v in (MUST_COMPLETE, MAY_DEADLOCK, UNKNOWN)}
        for cell in self.cells.values():
            counts[cell.verdict] += 1
        lines.append("")
        lines.append(
            f"{len(self.cells)} cell(s): "
            f"{counts[MUST_COMPLETE]} must-complete, "
            f"{counts[MAY_DEADLOCK]} may-deadlock, "
            f"{counts[UNKNOWN]} unknown")
        for err in self.errors:
            lines.append(f"  analysis-error: {err}")
        return "\n".join(lines)

    def render_dot(self) -> str:
        return render_dot(self.analyses)


def build_report(benches: Optional[Sequence[str]] = None) -> AnalysisReport:
    """Run the full static pipeline over the shipped benchmarks."""
    from repro.workloads.registry import benchmark_names

    names = list(benches) if benches else benchmark_names()
    policies = table_policies()
    analyses = [analyze_benchmark(bench) for bench in names]
    report = AnalysisReport(
        benchmarks=names,
        policies=[p.name for p in policies],
        analyses=analyses,
    )
    for pa in analyses:
        for policy in policies:
            report.cells[(pa.bench, policy.name)] = cell_verdict(
                pa.bench, policy, pa.profiles, pa.errors)
    return report


# -- golden-table comparison ---------------------------------------------------

def write_golden(report: AnalysisReport, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report.golden_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")


def compare_golden(report: AnalysisReport, path: str) -> List[str]:
    """Diffs between the fresh table and the committed golden.

    Returns human-readable mismatch lines (empty = clean)."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            golden = json.load(fh)
    except FileNotFoundError:
        return [f"golden file {path} not found — generate it with "
                f"`python -m repro analyze --write-golden {path}`"]
    except ValueError as exc:
        return [f"golden file {path} is not valid JSON: {exc}"]
    fresh = report.golden_dict()
    diffs: List[str] = []
    if golden.get("version") != fresh["version"]:
        diffs.append(
            f"schema version drift: golden={golden.get('version')} "
            f"fresh={fresh['version']} — re-baseline the golden")
        return diffs
    for key in ("benchmarks", "policies"):
        if golden.get(key) != fresh[key]:
            diffs.append(f"{key} changed: golden={golden.get(key)} "
                         f"fresh={fresh[key]}")
    gold_table = golden.get("table", {})
    for bench in fresh["benchmarks"]:
        for policy in fresh["policies"]:
            want = gold_table.get(bench, {}).get(policy)
            have = fresh["table"][bench][policy]
            if want != have:
                diffs.append(f"{bench}/{policy}: golden={want} fresh={have}")
    return diffs


# -- cross-check entry point ---------------------------------------------------

def run_crosscheck(report: AnalysisReport,
                   design_path: str = "DESIGN.md",
                   dynamic: bool = True) -> "xcheck.CrosscheckReport":
    """Cross-check the static table: DESIGN.md always, dynamic runs
    when ``dynamic`` (the expensive 96-cell differential replay)."""
    observed = xcheck.observed_outcomes(report.benchmarks) if dynamic \
        else None
    design = xcheck.parse_design_ifp_table(design_path)
    return xcheck.crosscheck(report.verdicts, observed, design)

"""The litmus oracle: run programs on the simulator, judge the models.

For each (program, policy) pair the oracle builds the program's kernel
on a small two-CU machine, schedules the program's resource-loss
window through the standard preemption machinery, runs it under the
standard engine and watchdog, reconstructs an
:class:`~repro.litmus.models.ObservedSchedule` from a host-side
observer plus final shared memory, and classifies the schedule against
all three progress models.

The observer is pure host-side bookkeeping (plain dict/list mutation
from inside the kernel generator, no simulated events), so observation
cannot perturb timing: an observed run is bit-identical to an
unobserved one.

Contract enforcement cross-checks the *dynamic* verdicts against the
*static* expectations from :func:`repro.litmus.models.expected_cell`
(which reuses :mod:`repro.analysis.specs`): a cell the spec calls
``MUST_COMPLETE`` that nevertheless hangs is a violation — the same
soundness direction the analyzer's 96-cell table guarantees, applied
to generated programs. ``MAY_DEADLOCK`` cells may go either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.specs import MUST_COMPLETE, table_policies
from repro.core.policies import (
    PolicySpec,
    awg,
    baseline,
    monnr_one,
    timeout,
)
from repro.gpu.config import GPUConfig
from repro.gpu.gpu import GPU, RunOutcome
from repro.gpu.kernel import Kernel, ResourceProfile
from repro.gpu.preemption import ResourceLossEvent, ResourceRestoreEvent
from repro.litmus.generate import (
    ACQUIRE,
    ADD,
    IF_FLAG,
    LitmusProgram,
    NUM_CUS,
    RELEASE,
    SET,
    WAIT,
    WAITC,
    WORK,
)
from repro.litmus.models import (
    IFP,
    Judgment,
    MODELS,
    OBE,
    ObservedSchedule,
    SATISFIED,
    VIOLATED,
    expected_cell,
    judge_all,
)

#: report schema version (golden litmus files embed it)
REPORT_VERSION = 1

#: the policy subset the committed golden corpus pins: the non-IFP
#: baseline, the timer-only design, the most wake-loss-prone monitor
#: design (resume one, non-fused), and the paper's headline AWG policy.
#: ``litmus run`` without ``--smoke`` widens to all 8 table policies.
def golden_policies() -> List[PolicySpec]:
    return [baseline(), timeout(20_000), monnr_one(), awg()]


def litmus_config(program: LitmusProgram, seed: int) -> GPUConfig:
    """The litmus machine: two CUs, occupancy from the program, and a
    watchdog window comfortably above every recovery timer (the 100k
    backstop must get its chance before deadlock is declared)."""
    return GPUConfig(
        num_cus=NUM_CUS,
        max_wgs_per_cu=program.wgs_per_cu,
        deadlock_window=150_000,
        max_cycles=10_000_000,
        seed=seed,
    )


# ---------------------------------------------------------------------------
# the host-side observer + kernel builder
# ---------------------------------------------------------------------------

class LitmusObserver:
    """Host-side schedule recorder; mutated from kernel generators with
    zero simulated cost."""

    def __init__(self, wgs: int) -> None:
        self.wgs = wgs
        self.started: set = set()
        self.completed: set = set()
        #: completed top-level actions per WG (the resume pc)
        self.steps = [0] * wgs
        #: wg -> (pc, opcode) while blocked inside a blessed wait
        self.in_wait: Dict[int, Tuple[int, str]] = {}
        self.waits_executed = 0


@dataclass
class LitmusLayout:
    """Shared-variable placement: one cache line per variable."""

    flag_addrs: List[int]
    counter_addrs: List[int]
    lock_addrs: List[int]


def allocate_layout(program: LitmusProgram, gpu: GPU) -> LitmusLayout:
    count = program.flags + program.counters + program.mutexes
    addrs = gpu.alloc_sync_vars(count) if count else []
    f, c = program.flags, program.counters
    return LitmusLayout(
        flag_addrs=addrs[:f],
        counter_addrs=addrs[f:f + c],
        lock_addrs=addrs[f + c:],
    )


def build_litmus_kernel(
    program: LitmusProgram,
    gpu: GPU,
    observer: Optional[LitmusObserver] = None,
) -> Kernel:
    """Instantiate the program as a kernel on ``gpu``; the observer (one
    per run) records the schedule the models judge."""
    observer = observer if observer is not None else LitmusObserver(program.wgs)
    layout = allocate_layout(program, gpu)

    def run_actions(ctx, w, actions, top):
        for action in actions:
            op = action[0]
            if op == WORK:
                yield from ctx.compute(action[1])
            elif op == SET:
                yield from ctx.atomic_store(
                    layout.flag_addrs[action[1]], action[2])
                ctx.progress("litmus-set")
            elif op == ADD:
                yield from ctx.atomic_add(
                    layout.counter_addrs[action[1]], action[2])
                ctx.progress("litmus-add")
            elif op == WAIT:
                observer.in_wait[w] = (observer.steps[w], op)
                observer.waits_executed += 1
                yield from ctx.wait_for_value(
                    layout.flag_addrs[action[1]], action[2])
                del observer.in_wait[w]
            elif op == WAITC:
                target = action[2]
                observer.in_wait[w] = (observer.steps[w], op)
                observer.waits_executed += 1
                yield from ctx.wait_for_value(
                    layout.counter_addrs[action[1]], target,
                    satisfied=lambda v, t=target: v >= t)
                del observer.in_wait[w]
            elif op == ACQUIRE:
                observer.in_wait[w] = (observer.steps[w], op)
                observer.waits_executed += 1
                yield from ctx.acquire_test_and_set(
                    layout.lock_addrs[action[1]])
                del observer.in_wait[w]
            elif op == RELEASE:
                yield from ctx.atomic_exch(layout.lock_addrs[action[1]], 0)
                ctx.progress("litmus-release")
            elif op == IF_FLAG:
                value = yield from ctx.atomic_load(
                    layout.flag_addrs[action[1]])
                if value == action[2]:
                    yield from run_actions(ctx, w, action[3], top=False)
            if top:
                observer.steps[w] += 1

    def body(ctx):
        w = ctx.grid_index
        observer.started.add(w)
        yield from run_actions(ctx, w, program.scripts[w], top=True)
        observer.completed.add(w)

    return Kernel(
        name=program.label,
        body=body,
        grid_wgs=program.wgs,
        wavefronts_per_wg=1,
        resources=ResourceProfile(vgprs_per_wi=8, sgprs_per_wavefront=64),
        args={"litmus_observer": observer, "litmus_layout": layout,
              "program": program.spec()},
    )


# ---------------------------------------------------------------------------
# running + judging
# ---------------------------------------------------------------------------

@dataclass
class LitmusRun:
    """One (program, policy) execution with its judged schedule."""

    program: LitmusProgram
    policy: str
    outcome: RunOutcome
    schedule: ObservedSchedule
    judgments: Dict[str, Judgment]
    expected: str
    expected_reasons: Tuple[str, ...] = ()

    @property
    def contract_violation(self) -> Optional[str]:
        """The soundness direction: MUST_COMPLETE cells must complete."""
        if self.expected == MUST_COMPLETE and not self.outcome.ok:
            return (f"{self.program.label}/{self.policy}: spec says "
                    f"MUST_COMPLETE but the run hung "
                    f"({self.outcome.reason})")
        return None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "program": self.program.name,
            "alias": self.program.alias,
            "policy": self.policy,
            "completed": self.outcome.completed,
            "deadlocked": self.outcome.deadlocked,
            "cycles": self.outcome.cycles,
            "reason": self.outcome.reason,
            "expected": self.expected,
            "schedule": self.schedule.to_dict(),
            "verdicts": {m: j.verdict for m, j in self.judgments.items()},
        }


def run_litmus(program: LitmusProgram, policy: PolicySpec,
               seed: int = 1) -> LitmusRun:
    """Run one program under one policy and judge all models."""
    gpu = GPU(litmus_config(program, seed), policy)
    observer = LitmusObserver(program.wgs)
    kernel = build_litmus_kernel(program, gpu, observer)
    layout = kernel.args["litmus_layout"]
    gpu.launch(kernel)
    if program.loss_at_us is not None:
        ResourceLossEvent(at_us=program.loss_at_us,
                          cu_id=NUM_CUS - 1).schedule(gpu)
    if program.restore_at_us is not None:
        ResourceRestoreEvent(at_us=program.restore_at_us,
                             cu_id=NUM_CUS - 1).schedule(gpu)
    outcome = gpu.run()
    schedule = _reconstruct(program, gpu, layout, observer, outcome)
    judgments = judge_all(program, schedule)
    cell = expected_cell(program, policy)
    return LitmusRun(
        program=program,
        policy=policy.name,
        outcome=outcome,
        schedule=schedule,
        judgments=judgments,
        expected=cell.verdict,
        expected_reasons=cell.reasons,
    )


def _reconstruct(program: LitmusProgram, gpu: GPU,
                 layout: LitmusLayout,
                 observer: LitmusObserver,
                 outcome: RunOutcome) -> ObservedSchedule:
    """Assemble the judged schedule from observer + final memory."""
    return ObservedSchedule(
        wgs=program.wgs,
        started=frozenset(observer.started),
        completed=frozenset(observer.completed),
        pcs=tuple(observer.steps),
        waits_executed=observer.waits_executed,
        terminated=outcome.ok,
        flags=tuple(gpu.store.read(a) for a in layout.flag_addrs),
        counters=tuple(gpu.store.read(a) for a in layout.counter_addrs),
        locks=tuple(gpu.store.read(a) for a in layout.lock_addrs),
    )


# ---------------------------------------------------------------------------
# the report
# ---------------------------------------------------------------------------

@dataclass
class LitmusReport:
    """Every verdict of one oracle pass, JSON- and table-renderable."""

    seed: int
    policies: List[str]
    runs: List[LitmusRun] = field(default_factory=list)

    @property
    def programs(self) -> List[LitmusProgram]:
        seen: Dict[str, LitmusProgram] = {}
        for run in self.runs:
            seen.setdefault(run.program.name, run.program)
        return list(seen.values())

    @property
    def contract_violations(self) -> List[str]:
        return [v for run in self.runs
                for v in ([run.contract_violation]
                          if run.contract_violation else [])]

    def violating_runs(self) -> List[LitmusRun]:
        return [run for run in self.runs if run.contract_violation]

    def models_distinguishable(self) -> bool:
        """The acceptance property: some program's observed schedules
        violate OBE on one policy while satisfying IFP (non-vacuously)
        on another — the models are ordered, not coincident."""
        obe_violated = {run.program.name for run in self.runs
                        if run.judgments[OBE].verdict == VIOLATED}
        ifp_satisfied = {run.program.name for run in self.runs
                         if run.judgments[IFP].verdict == SATISFIED}
        return bool(obe_violated & ifp_satisfied)

    @property
    def ok(self) -> bool:
        return not self.contract_violations

    def to_dict(self) -> Dict[str, Any]:
        by_program: Dict[str, Dict[str, Any]] = {}
        for run in self.runs:
            entry = by_program.setdefault(run.program.name, {
                "name": run.program.name,
                "alias": run.program.alias,
                "spec": run.program.spec(),
                "cells": {},
            })
            entry["cells"][run.policy] = {
                "completed": run.outcome.completed,
                "deadlocked": run.outcome.deadlocked,
                "cycles": run.outcome.cycles,
                "expected": run.expected,
                "verdicts": {m: j.verdict
                             for m, j in run.judgments.items()},
            }
        return {
            "version": REPORT_VERSION,
            "seed": self.seed,
            "policies": list(self.policies),
            "models": [m.name for m in MODELS],
            "programs": [by_program[k] for k in sorted(by_program)],
            "summary": {
                "runs": len(self.runs),
                "contract_violations": self.contract_violations,
                "models_distinguishable": self.models_distinguishable(),
            },
        }

    def render(self) -> str:
        width = max((len(r.program.label) for r in self.runs), default=10)
        lines = []
        header = (f"{'program'.ljust(width)}  {'policy'.ljust(12)} "
                  f"{'outcome'.ljust(9)} {'expect'.ljust(6)} "
                  "OBE/Linear/IFP")
        lines.append(header)
        for run in self.runs:
            verdict = "/".join(
                {SATISFIED: "sat", VIOLATED: "VIOL", "vacuous": "vac"}
                [run.judgments[m.name].verdict] for m in MODELS)
            outcome = "ok" if run.outcome.ok else "HANG"
            expect = "must" if run.expected == MUST_COMPLETE else "may-dl"
            lines.append(
                f"{run.program.label.ljust(width)}  "
                f"{run.policy.ljust(12)} {outcome.ljust(9)} "
                f"{expect.ljust(6)} {verdict}")
        lines.append("")
        lines.append(
            f"{len(self.runs)} run(s), "
            f"{len(self.contract_violations)} contract violation(s), "
            f"models distinguishable: "
            f"{'yes' if self.models_distinguishable() else 'NO'}")
        for violation in self.contract_violations:
            lines.append(f"  VIOLATION: {violation}")
        return "\n".join(lines)


def run_corpus(
    programs: Sequence[LitmusProgram],
    policies: Optional[Sequence[PolicySpec]] = None,
    seed: int = 1,
) -> LitmusReport:
    """The oracle pass: every program under every policy."""
    policies = list(policies) if policies is not None else table_policies()
    report = LitmusReport(seed=seed, policies=[p.name for p in policies])
    for program in programs:
        for policy in policies:
            report.runs.append(run_litmus(program, policy, seed=seed))
    return report


# ---------------------------------------------------------------------------
# golden corpus comparison (tests/golden/litmus/)
# ---------------------------------------------------------------------------

def golden_entry(report: LitmusReport,
                 program: LitmusProgram) -> Dict[str, Any]:
    """The committed-golden subset for one corpus program: canonical
    spec, per-policy outcome bits and per-model verdicts. Cycle counts
    are deliberately excluded so engine perf work does not churn the
    litmus goldens."""
    cells = {}
    for run in report.runs:
        if run.program.name != program.name:
            continue
        cells[run.policy] = {
            "completed": run.outcome.completed,
            "expected": run.expected,
            "verdicts": {m: j.verdict for m, j in run.judgments.items()},
        }
    return {
        "version": REPORT_VERSION,
        "alias": program.alias,
        "name": program.name,
        "program": program.spec(),
        "policies": list(report.policies),
        "cells": cells,
    }


def compare_golden_entry(fresh: Dict[str, Any],
                         golden: Dict[str, Any]) -> List[str]:
    """Human-readable diffs between a fresh entry and a committed one."""
    diffs: List[str] = []
    label = fresh.get("alias") or fresh.get("name")
    if golden.get("version") != fresh["version"]:
        return [f"{label}: golden schema version "
                f"{golden.get('version')} != {fresh['version']} — "
                "regenerate with REPRO_UPDATE_GOLDENS=1"]
    if golden.get("name") != fresh["name"]:
        diffs.append(f"{label}: canonical name changed "
                     f"{golden.get('name')} -> {fresh['name']} "
                     "(program content drifted)")
    for policy, cell in fresh["cells"].items():
        want = golden.get("cells", {}).get(policy)
        if want is None:
            diffs.append(f"{label}/{policy}: no golden cell")
            continue
        for key in ("completed", "expected"):
            if want.get(key) != cell[key]:
                diffs.append(f"{label}/{policy}: {key} "
                             f"golden={want.get(key)} fresh={cell[key]}")
        for model, verdict in cell["verdicts"].items():
            got = want.get("verdicts", {}).get(model)
            if got != verdict:
                diffs.append(f"{label}/{policy}/{model}: "
                             f"golden={got} fresh={verdict}")
    return diffs

"""Executable progress models: OBE, linear occupancy-bound, and IFP.

Following "Specifying and Testing GPU Workgroup Progress Models"
(Sorensen et al., arXiv:2109.06132), a progress model is a *fairness
obligation*: the set of WGs the scheduler must eventually keep
scheduling. A model forms a predicate over an *observed schedule* (one
finished or deadlocked simulation run):

- **OBE** (HSA occupancy-bound execution): every WG that ever became
  occupant (started executing) receives eventual fairness; WGs that
  never started may be postponed forever.
- **Linear** occupancy-bound: OBE plus in-order dispatch — once WG *i*
  has started, every WG with a smaller id is also guaranteed (the
  occupancy frontier only grows in id order).
- **IFP** (this paper's guarantee): *every* WG of the grid receives
  eventual fairness, occupant or not.

The lattice is ``OBE ⊑ Linear ⊑ IFP`` — fair sets only grow — so any
schedule that violates a weaker model violates every stronger one.

Judging is executable, not axiomatic: replay the program's scripts
from the observed deadlock state in the reference interpreter
(:func:`repro.litmus.generate.interpret`), restricted to the model's
fair set. If mandatory fairness alone forces every WG to terminate,
the observed hang *violated* the model; if some WG stays blocked even
then (its satisfier lies outside the fair set, or no satisfier exists
at all), the hang is *allowed* and the model is satisfied. Runs that
complete satisfy every model — *vacuously* if they never exercised a
single blessed wait.

The static side reuses :mod:`repro.analysis.specs` verbatim:
:func:`expected_cell` builds a :class:`~repro.analysis.specs.WaitProfile`
per litmus wait site and asks :func:`~repro.analysis.specs.cell_verdict`
for the policy's MUST_COMPLETE / MAY_DEADLOCK claim, layering the same
three progress arguments the analyzer applies to the shipped
benchmarks — so the litmus oracle and the 96-cell static table cannot
silently drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Sequence, Tuple

from repro.analysis.specs import (
    MAY_DEADLOCK,
    MUST_COMPLETE,
    WaitProfile,
    cell_verdict,
)
from repro.core.policies import PolicySpec
from repro.litmus.generate import (
    ACQUIRE,
    InterpState,
    LitmusProgram,
    WAIT,
    WAITC,
    WAIT_OPS,
    interpret,
)

# -- verdict vocabulary -------------------------------------------------------

SATISFIED = "satisfied"
VIOLATED = "violated"
VACUOUS = "vacuous"

#: the three models, weakest first (fair sets only grow along this order)
OBE = "OBE"
LINEAR = "Linear"
IFP = "IFP"

MODEL_ORDER: Dict[str, int] = {OBE: 0, LINEAR: 1, IFP: 2}


def weaker_or_equal(a: str, b: str) -> bool:
    """``a ⊑ b`` in the model lattice."""
    return MODEL_ORDER[a] <= MODEL_ORDER[b]


# -- observed schedules -------------------------------------------------------

@dataclass(frozen=True)
class ObservedSchedule:
    """What one simulation run exposed to the models.

    ``pcs`` are per-WG top-level action indices at the end of the run
    (``len(script)`` = completed); ``flags``/``counters``/``locks`` are
    the final shared-memory values, which together with the pcs form
    the exact resume state for judge-by-fair-replay."""

    wgs: int
    started: FrozenSet[int]
    completed: FrozenSet[int]
    pcs: Tuple[int, ...]
    waits_executed: int
    terminated: bool
    flags: Tuple[int, ...] = ()
    counters: Tuple[int, ...] = ()
    locks: Tuple[int, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "wgs": self.wgs,
            "started": sorted(self.started),
            "completed": sorted(self.completed),
            "pcs": list(self.pcs),
            "waits_executed": self.waits_executed,
            "terminated": self.terminated,
            "flags": list(self.flags),
            "counters": list(self.counters),
            "locks": list(self.locks),
        }

    def resume_state(self) -> InterpState:
        return InterpState(
            pcs=list(self.pcs),
            flags=list(self.flags),
            counters=list(self.counters),
            locks=list(self.locks),
        )


@dataclass(frozen=True)
class Judgment:
    """One (model, schedule) verdict with its progress argument."""

    model: str
    verdict: str
    reasons: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {"model": self.model, "verdict": self.verdict,
                "reasons": list(self.reasons)}


# -- the models ---------------------------------------------------------------

@dataclass(frozen=True)
class ProgressModel:
    """A fairness obligation, made executable (see module docstring)."""

    name: str

    @property
    def rank(self) -> int:
        return MODEL_ORDER[self.name]

    def fair_set(self, schedule: ObservedSchedule) -> FrozenSet[int]:
        """The WGs this model obliges the scheduler to keep serving."""
        if self.name == IFP:
            return frozenset(range(schedule.wgs))
        if self.name == LINEAR:
            if not schedule.started:
                return frozenset()
            frontier = max(schedule.started)
            return schedule.started | frozenset(range(frontier))
        return schedule.started  # OBE

    def judge(self, program: LitmusProgram,
              schedule: ObservedSchedule) -> Judgment:
        """Classify one observed schedule against this model."""
        if schedule.terminated:
            if schedule.waits_executed == 0:
                return Judgment(self.name, VACUOUS, (
                    "run completed without ever entering a blessed wait — "
                    "the progress obligation was never exercised",))
            return Judgment(self.name, SATISFIED, (
                f"run completed; {schedule.waits_executed} wait(s) "
                "exercised and satisfied",))

        fair = self.fair_set(schedule)
        replay = interpret(program, fair=set(fair),
                           start=schedule.resume_state())
        if replay.terminated:
            stuck = sorted(set(range(program.wgs)) - schedule.completed)
            return Judgment(self.name, VIOLATED, (
                f"{self.name} fairness over WGs {sorted(fair)} alone "
                f"forces termination (fair replay completes all "
                f"{program.wgs} WGs), yet the run hung with WGs "
                f"{stuck} unfinished — the scheduler withheld mandatory "
                "progress",))
        stuck = sorted(set(range(program.wgs)) - replay.completed)
        detail = "; ".join(
            f"wg{w} stuck at {replay.blocked[w][0]}" if w in replay.blocked
            else f"wg{w} outside the fair set"
            for w in stuck)
        if schedule.waits_executed == 0:
            return Judgment(self.name, VACUOUS, (
                f"hang is allowed under {self.name} ({detail}), but no "
                "blessed wait was ever exercised",))
        return Judgment(self.name, SATISFIED, (
            f"hang is allowed under {self.name}: even with fairness over "
            f"WGs {sorted(fair)}, {detail}",))


#: the registered models, weakest first
MODELS: Tuple[ProgressModel, ...] = (
    ProgressModel(OBE),
    ProgressModel(LINEAR),
    ProgressModel(IFP),
)


def judge_all(program: LitmusProgram,
              schedule: ObservedSchedule) -> Dict[str, Judgment]:
    return {m.name: m.judge(program, schedule) for m in MODELS}


def claimed_model(policy: PolicySpec) -> str:
    """The strongest model a policy claims on fault-free runs: IFP for
    the paper's context-switching policies, OBE for occupancy-bound
    ones. (Under a resource-loss window an occupancy-bound policy
    claims nothing — eviction revokes occupancy, see
    :func:`expected_cell`.)"""
    return IFP if policy.provides_ifp else OBE


# -- static expectations (repro.analysis.specs reuse) --------------------------

def wait_profiles(program: LitmusProgram) -> List[WaitProfile]:
    """One :class:`~repro.analysis.specs.WaitProfile` per wait site.

    Every litmus wait lowers through ``ctx.sync_wait`` (blessed,
    policy-lowered, un-fused); counter waits are monotonic ``>=``
    threshold waits, flag/mutex waits are exact re-checks. Writers are
    by construction part of the same program, so sites are
    ``matched``."""
    profiles: List[WaitProfile] = []
    for w, script in enumerate(program.scripts):
        for i, action in enumerate(script):
            if action[0] not in WAIT_OPS:
                continue
            waiters = _waiter_count(program, action)
            profiles.append(WaitProfile(
                label=f"wg{w}[{i}]:{action[0]}",
                kind="blocking-wait",
                fused=False,
                monotonic=action[0] == WAITC,
                single_waiter=waiters <= 1,
                matched=True,
            ))
    return profiles


def _waiter_count(program: LitmusProgram, action) -> int:
    """How many scripts wait on the same variable (resume-one hazard)."""
    count = 0
    for script in program.scripts:
        for other in script:
            if other[0] not in WAIT_OPS:
                continue
            if other[0] in (WAIT, WAITC) and action[0] in (WAIT, WAITC):
                same_space = (other[0] == WAITC) == (action[0] == WAITC)
                if same_space and other[1] == action[1]:
                    count += 1
            elif other[0] == ACQUIRE and action[0] == ACQUIRE \
                    and other[1] == action[1]:
                count += 1
    return count


@dataclass(frozen=True)
class ExpectedCell:
    """The static claim for one (program, policy) pair."""

    verdict: str
    reasons: Tuple[str, ...] = ()


def expected_cell(program: LitmusProgram,
                  policy: PolicySpec) -> ExpectedCell:
    """What :mod:`repro.analysis.specs` predicts for this cell.

    Layering mirrors the analyzer: a program that hangs even under the
    reference fair schedule may deadlock everywhere (program bug, not a
    scheduling failure); an occupancy-bound policy additionally claims
    nothing under resource loss or oversubscription; otherwise the
    per-site ``cell_verdict`` argument (wake-loss modes vs covering
    timers) decides."""
    ideal = interpret(program)
    if not ideal.terminated:
        stuck = sorted(ideal.blocked)
        return ExpectedCell(MAY_DEADLOCK, (
            f"program logically deadlocks under the reference fair "
            f"schedule (WGs {stuck} blocked) — no scheduler can save it",))
    profiles = wait_profiles(program)
    if not policy.provides_ifp:
        if program.loss_at_us is not None:
            return ExpectedCell(MAY_DEADLOCK, (
                f"{policy.name} cannot restore WGs evicted by the "
                f"resource-loss window at {program.loss_at_us}us — "
                "occupancy, once revoked, never returns",))
        if program.oversubscribed and profiles:
            cell = cell_verdict(program.name, policy, profiles)
            return ExpectedCell(MAY_DEADLOCK, tuple(cell.reasons))
        return ExpectedCell(MUST_COMPLETE, (
            f"no resource loss and no wait can span the occupancy "
            f"boundary ({program.wgs} WGs, occupancy "
            f"{program.occupancy}): resident WGs retire and recycle "
            "their slots",))
    if not profiles:
        return ExpectedCell(MUST_COMPLETE, (
            "no reachable wait sites: straight-line scripts retire and "
            "free their slots under any policy",))
    cell = cell_verdict(program.name, policy, profiles)
    return ExpectedCell(cell.verdict, tuple(cell.reasons))

"""Litmus programs: a tiny synchronization DSL plus generators.

A litmus program is a handful of work-groups, each running a short
straight-line *script* of synchronization actions against shared flags,
counters and test-and-set mutexes, on a deliberately small two-CU
machine whose occupancy (and optional mid-run resource-loss window) is
part of the program. The action vocabulary is restricted so that
program outcomes are *schedule-independent under fairness*:

- flags are write-once (``set`` may target each flag at most once
  across all scripts), and waits on them are satisfied-forever;
- counters only grow (``add`` amounts are positive) and counter waits
  are ``>=`` threshold waits;
- critical sections are wait-free: between ``acquire`` and ``release``
  a script may only ``work``/``set``/``add``, and never holds more
  than one mutex — so a mutex, once acquired, is always released after
  finitely many non-blocking steps;
- ``if_flag`` (the vacuity fixture) may only guard on flags *no script
  ever sets*, so the branch is deterministically never taken.

Under those rules "does the program terminate when every WG is
scheduled fairly?" has a single schedule-independent answer, computed
by :func:`interpret` — a host-side reference interpreter that is also
the executable core of the progress models in
:mod:`repro.litmus.models` (judge-by-fair-replay).

Canonical form + content addressing: :func:`canonicalize` renumbers
shared variables in first-use order, drops unused variables and clamps
``work`` durations to a fixed grid; :func:`program_name` hashes the
canonical spec (``lit-<sha256[:10]>``), so structurally identical
programs collide to one name regardless of how they were generated.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field, replace
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.errors import ConfigError

#: canonical spec schema version (baked into the content hash)
SPEC_VERSION = 1

#: the litmus machine: two CUs so a resource-loss window (CU 1 goes
#: away) always leaves one CU running — occupancy is 2 * wgs_per_cu
NUM_CUS = 2

#: work-duration grid for the canonical form
WORK_STEP = 50
WORK_MIN = 50
WORK_MAX = 5_000

# action opcodes
WORK = "work"          # ("work", cycles)
SET = "set"            # ("set", flag, value)        write-once flag store
WAIT = "wait"          # ("wait", flag, value)       wait until flag == value
ADD = "add"            # ("add", counter, amount)    monotone atomic add
WAITC = "waitc"        # ("waitc", counter, target)  wait until counter >= target
ACQUIRE = "acquire"    # ("acquire", mutex)          test-and-set acquire
RELEASE = "release"    # ("release", mutex)
IF_FLAG = "if_flag"    # ("if_flag", flag, value, (sub-actions...))

#: opcodes that enter a blessed wait (block until a condition holds)
WAIT_OPS = (WAIT, WAITC, ACQUIRE)

Action = Tuple
Script = Tuple[Action, ...]


@dataclass(frozen=True)
class LitmusProgram:
    """One litmus program (see module docstring for the action rules)."""

    wgs: int
    scripts: Tuple[Script, ...]
    flags: int = 0
    counters: int = 0
    mutexes: int = 0
    #: resident WGs per CU; occupancy = NUM_CUS * wgs_per_cu
    wgs_per_cu: int = 2
    #: CU 1 is disabled (its WGs evicted) at this simulated time
    loss_at_us: Optional[float] = None
    #: CU 1 comes back at this time (requires loss_at_us)
    restore_at_us: Optional[float] = None
    #: human-readable corpus name (not part of the canonical identity)
    alias: Optional[str] = None

    @property
    def occupancy(self) -> int:
        return NUM_CUS * self.wgs_per_cu

    @property
    def oversubscribed(self) -> bool:
        return self.wgs > self.occupancy

    @property
    def name(self) -> str:
        return program_name(self)

    @property
    def label(self) -> str:
        return self.alias or self.name

    def spec(self) -> Dict[str, Any]:
        """Canonical-identity JSON spec (alias rides along, unhashed)."""
        out = {
            "version": SPEC_VERSION,
            "wgs": self.wgs,
            "wgs_per_cu": self.wgs_per_cu,
            "flags": self.flags,
            "counters": self.counters,
            "mutexes": self.mutexes,
            "loss_at_us": self.loss_at_us,
            "restore_at_us": self.restore_at_us,
            "scripts": [[_action_to_json(a) for a in script]
                        for script in self.scripts],
        }
        if self.alias:
            out["alias"] = self.alias
        return out

    @classmethod
    def from_spec(cls, spec: Dict[str, Any]) -> "LitmusProgram":
        if spec.get("version") != SPEC_VERSION:
            raise ConfigError(
                f"litmus spec version {spec.get('version')!r} not supported "
                f"(this build reads version {SPEC_VERSION})")
        program = cls(
            wgs=int(spec["wgs"]),
            scripts=tuple(tuple(_action_from_json(a) for a in script)
                          for script in spec["scripts"]),
            flags=int(spec.get("flags", 0)),
            counters=int(spec.get("counters", 0)),
            mutexes=int(spec.get("mutexes", 0)),
            wgs_per_cu=int(spec.get("wgs_per_cu", 2)),
            loss_at_us=spec.get("loss_at_us"),
            restore_at_us=spec.get("restore_at_us"),
            alias=spec.get("alias"),
        )
        validate_program(program)
        return program


def _action_to_json(action: Action) -> List[Any]:
    if action[0] == IF_FLAG:
        return [IF_FLAG, action[1], action[2],
                [_action_to_json(a) for a in action[3]]]
    return list(action)


def _action_from_json(raw: Sequence[Any]) -> Action:
    if raw[0] == IF_FLAG:
        return (IF_FLAG, int(raw[1]), int(raw[2]),
                tuple(_action_from_json(a) for a in raw[3]))
    return (raw[0],) + tuple(int(v) for v in raw[1:])


# ---------------------------------------------------------------------------
# validation (the well-formedness rules that make outcomes
# schedule-independent under fairness)
# ---------------------------------------------------------------------------

def _flat_actions(script: Script):
    for action in script:
        yield action
        if action[0] == IF_FLAG:
            for sub in action[3]:
                yield sub


def validate_program(program: LitmusProgram) -> None:
    """Raise :class:`ConfigError` unless the program is well-formed."""
    if program.wgs < 1:
        raise ConfigError("litmus program needs at least one WG")
    if len(program.scripts) != program.wgs:
        raise ConfigError(
            f"{program.wgs} WGs but {len(program.scripts)} scripts")
    if program.wgs_per_cu < 1:
        raise ConfigError("wgs_per_cu must be >= 1")
    if program.restore_at_us is not None:
        if program.loss_at_us is None:
            raise ConfigError("restore_at_us requires loss_at_us")
        if program.restore_at_us <= program.loss_at_us:
            raise ConfigError("restore_at_us must come after loss_at_us")
    if program.loss_at_us is not None and program.loss_at_us <= 0:
        raise ConfigError("loss_at_us must be positive")

    set_flags: Set[int] = set()
    for w, script in enumerate(program.scripts):
        held: Optional[int] = None
        for action in script:
            op = action[0]
            if op == WORK:
                if action[1] < 1:
                    raise ConfigError(f"wg{w}: work cycles must be >= 1")
            elif op == SET:
                _, flag, value = action
                _check_index(w, "flag", flag, program.flags)
                if value < 1:
                    raise ConfigError(f"wg{w}: set value must be >= 1")
                if flag in set_flags:
                    raise ConfigError(
                        f"wg{w}: flag {flag} written twice — flags are "
                        "write-once so waits stay satisfied-forever")
                set_flags.add(flag)
            elif op == WAIT:
                _, flag, value = action
                _check_index(w, "flag", flag, program.flags)
                if value < 1:
                    raise ConfigError(
                        f"wg{w}: waiting for the initial flag value 0 is "
                        "always immediately satisfied")
                if held is not None:
                    raise ConfigError(
                        f"wg{w}: wait inside a critical section — critical "
                        "sections must be wait-free")
            elif op == ADD:
                _, counter, amount = action
                _check_index(w, "counter", counter, program.counters)
                if amount < 1:
                    raise ConfigError(
                        f"wg{w}: add amount must be positive (counters "
                        "are monotone)")
            elif op == WAITC:
                _, counter, target = action
                _check_index(w, "counter", counter, program.counters)
                if target < 1:
                    raise ConfigError(f"wg{w}: waitc target must be >= 1")
                if held is not None:
                    raise ConfigError(
                        f"wg{w}: waitc inside a critical section")
            elif op == ACQUIRE:
                _check_index(w, "mutex", action[1], program.mutexes)
                if held is not None:
                    raise ConfigError(
                        f"wg{w}: acquire while holding mutex {held} — at "
                        "most one mutex may be held at a time")
                held = action[1]
            elif op == RELEASE:
                _check_index(w, "mutex", action[1], program.mutexes)
                if held != action[1]:
                    raise ConfigError(
                        f"wg{w}: release of mutex {action[1]} while "
                        f"holding {held!r}")
                held = None
            elif op == IF_FLAG:
                _, flag, value, sub = action
                _check_index(w, "flag", flag, program.flags)
                if held is not None:
                    raise ConfigError(f"wg{w}: if_flag inside a critical "
                                      "section")
                for inner in sub:
                    if inner[0] == IF_FLAG:
                        raise ConfigError(f"wg{w}: nested if_flag")
                    if inner[0] in (ACQUIRE, RELEASE):
                        raise ConfigError(
                            f"wg{w}: mutex ops inside if_flag")
            else:
                raise ConfigError(f"wg{w}: unknown action {op!r}")
        if held is not None:
            raise ConfigError(
                f"wg{w}: script ends still holding mutex {held}")

    # if_flag guards must be deterministically never-taken: the guarded
    # flag may not be set by any script (see module docstring).
    for w, script in enumerate(program.scripts):
        for action in script:
            if action[0] == IF_FLAG and action[1] in set_flags:
                raise ConfigError(
                    f"wg{w}: if_flag guards flag {action[1]} which is "
                    "written — guards must be statically never-taken")


def _check_index(wg: int, kind: str, index: int, count: int) -> None:
    if not 0 <= index < count:
        raise ConfigError(
            f"wg{wg}: {kind} index {index} out of range (program "
            f"declares {count})")


# ---------------------------------------------------------------------------
# canonical form + content addressing
# ---------------------------------------------------------------------------

def _clamp_work(cycles: int) -> int:
    cycles = max(WORK_MIN, min(WORK_MAX, cycles))
    return ((cycles + WORK_STEP // 2) // WORK_STEP) * WORK_STEP


def canonicalize(program: LitmusProgram) -> LitmusProgram:
    """Deterministic canonical form: work durations snapped to the
    :data:`WORK_STEP` grid, shared variables renumbered in first-use
    order (scanning wg0..wgN, action order), unused variables dropped.
    Idempotent; preserves semantics."""
    flag_map: Dict[int, int] = {}
    counter_map: Dict[int, int] = {}
    mutex_map: Dict[int, int] = {}

    def remap(table: Dict[int, int], index: int) -> int:
        if index not in table:
            table[index] = len(table)
        return table[index]

    def canon_action(action: Action) -> Action:
        op = action[0]
        if op == WORK:
            return (WORK, _clamp_work(action[1]))
        if op in (SET, WAIT):
            return (op, remap(flag_map, action[1]), action[2])
        if op in (ADD, WAITC):
            return (op, remap(counter_map, action[1]), action[2])
        if op in (ACQUIRE, RELEASE):
            return (op, remap(mutex_map, action[1]))
        if op == IF_FLAG:
            return (IF_FLAG, remap(flag_map, action[1]), action[2],
                    tuple(canon_action(a) for a in action[3]))
        raise ConfigError(f"unknown action {op!r}")

    scripts = tuple(tuple(canon_action(a) for a in script)
                    for script in program.scripts)
    out = replace(
        program,
        scripts=scripts,
        flags=len(flag_map),
        counters=len(counter_map),
        mutexes=len(mutex_map),
    )
    validate_program(out)
    return out


def program_name(program: LitmusProgram) -> str:
    """Content-addressed name ``lit-<sha256[:10]>`` of the canonical
    spec (alias excluded)."""
    spec = canonicalize(program).spec()
    spec.pop("alias", None)
    blob = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    return "lit-" + hashlib.sha256(blob.encode()).hexdigest()[:10]


# ---------------------------------------------------------------------------
# the reference interpreter (fair abstract execution)
# ---------------------------------------------------------------------------

@dataclass
class InterpState:
    """Abstract machine state: per-WG program counters (top-level action
    index; len(script) = completed) plus shared-variable values."""

    pcs: List[int]
    flags: List[int]
    counters: List[int]
    locks: List[int]

    @classmethod
    def initial(cls, program: LitmusProgram) -> "InterpState":
        return cls(
            pcs=[0] * program.wgs,
            flags=[0] * program.flags,
            counters=[0] * program.counters,
            locks=[0] * program.mutexes,
        )


@dataclass
class InterpResult:
    """Outcome of one fair abstract execution."""

    #: WGs that ran their script to completion
    completed: FrozenSet[int]
    #: every WG (fair or not) completed
    terminated: bool
    #: number of wait-actions (wait/waitc/acquire) *entered*
    waits_reached: int
    #: blocked WGs -> the action they are stuck at
    blocked: Dict[int, Action] = field(default_factory=dict)
    state: Optional[InterpState] = None


def _enabled(action: Action, state: InterpState) -> bool:
    op = action[0]
    if op == WAIT:
        return state.flags[action[1]] == action[2]
    if op == WAITC:
        return state.counters[action[1]] >= action[2]
    if op == ACQUIRE:
        return state.locks[action[1]] == 0
    return True


def interpret(
    program: LitmusProgram,
    fair: Optional[Set[int]] = None,
    start: Optional[InterpState] = None,
) -> InterpResult:
    """Execute the program abstractly under an eventually-fair scheduler
    restricted to the ``fair`` set of WGs (default: all).

    Runs each fair WG to its next blocking point, id order, round-robin,
    until quiescent. With the DSL's well-formedness rules the
    termination answer is schedule-independent, so this doubles as the
    ground truth for "must this program complete under a scheduler that
    is fair to ``fair``?" — the executable heart of the progress models.
    Non-fair WGs never execute (their pcs stay frozen), but their
    completion state still counts toward ``terminated``.
    """
    fair_set = set(range(program.wgs)) if fair is None else set(fair)
    state = start if start is not None else InterpState.initial(program)
    waits_reached = 0
    # sub-scripts of taken if_flag branches; empty for valid programs
    # (guards are statically never-taken) but handled for completeness
    pending_sub: Dict[int, List[Action]] = {}

    def step_wg(w: int) -> bool:
        """Run wg ``w`` until blocked/done; True if it executed anything."""
        nonlocal waits_reached
        script = program.scripts[w]
        moved = False
        while True:
            queue = pending_sub.get(w)
            if queue:
                action = queue[0]
            elif state.pcs[w] >= len(script):
                return moved
            else:
                action = script[state.pcs[w]]
            op = action[0]
            if op in WAIT_OPS:
                key = (w, state.pcs[w], len(queue) if queue else -1)
                if key not in _entered:
                    _entered.add(key)
                    waits_reached += 1
                if not _enabled(action, state):
                    return moved
            if op == ACQUIRE:
                state.locks[action[1]] = 1
            elif op == RELEASE:
                state.locks[action[1]] = 0
            elif op == SET:
                state.flags[action[1]] = action[2]
            elif op == ADD:
                state.counters[action[1]] += action[2]
            elif op == IF_FLAG:
                if state.flags[action[1]] == action[2]:
                    pending_sub.setdefault(w, []).extend(action[3])
            # WORK and WAIT/WAITC (once enabled) have no state effect
            if queue:
                queue.pop(0)
                if not queue:
                    del pending_sub[w]
            else:
                state.pcs[w] += 1
            moved = True

    _entered: Set[Tuple[int, int, int]] = set()
    progressed = True
    while progressed:
        progressed = False
        for w in sorted(fair_set):
            if step_wg(w):
                progressed = True

    completed = frozenset(
        w for w in range(program.wgs)
        if state.pcs[w] >= len(program.scripts[w]) and w not in pending_sub)
    blocked: Dict[int, Action] = {}
    for w in range(program.wgs):
        if w in completed:
            continue
        queue = pending_sub.get(w)
        if queue:
            blocked[w] = queue[0]
        elif state.pcs[w] < len(program.scripts[w]):
            blocked[w] = program.scripts[w][state.pcs[w]]
    return InterpResult(
        completed=completed,
        terminated=len(completed) == program.wgs,
        waits_reached=waits_reached,
        blocked=blocked,
        state=state,
    )


# ---------------------------------------------------------------------------
# template families (the adversarial shapes from the paper's §IV/§VI)
# ---------------------------------------------------------------------------

def handoff(
    wgs: int = 4,
    wgs_per_cu: int = 2,
    rounds: int = 2,
    cs_cycles: int = 300,
    loss_at_us: Optional[float] = None,
    restore_at_us: Optional[float] = None,
    alias: Optional[str] = None,
) -> LitmusProgram:
    """Mutex hand-off: every WG loops acquire / critical section /
    release on one shared test-and-set lock. With a resource-loss
    window, evicted WGs (possibly the lock holder) make the run hang
    under any policy that cannot restore them."""
    script: List[Action] = []
    for _ in range(rounds):
        script.extend([
            (WORK, 100),
            (ACQUIRE, 0),
            (ADD, 0, 1),
            (WORK, cs_cycles),
            (RELEASE, 0),
        ])
    return canonicalize(LitmusProgram(
        wgs=wgs, scripts=tuple(tuple(script) for _ in range(wgs)),
        flags=0, counters=1, mutexes=1, wgs_per_cu=wgs_per_cu,
        loss_at_us=loss_at_us, restore_at_us=restore_at_us, alias=alias))


def producer_consumer(
    consumers: int = 4,
    wgs_per_cu: int = 2,
    produce_cycles: int = 200,
    alias: Optional[str] = None,
) -> LitmusProgram:
    """The §IV.B occupancy slot cycle: the *last* WG produces a flag
    every earlier WG waits on. With consumers filling the occupancy,
    a non-IFP scheduler never dispatches the producer."""
    consumer: Script = ((WAIT, 0, 1), (WORK, 100))
    producer: Script = ((WORK, produce_cycles), (SET, 0, 1))
    return canonicalize(LitmusProgram(
        wgs=consumers + 1,
        scripts=tuple([consumer] * consumers + [producer]),
        flags=1, wgs_per_cu=wgs_per_cu, alias=alias))


def chain(
    wgs: int = 6,
    wgs_per_cu: int = 2,
    forward: bool = True,
    alias: Optional[str] = None,
) -> LitmusProgram:
    """Flag hand-off chain. ``forward``: WG *i* waits on WG *i-1* (safe
    under a linear oldest-first dispatcher even oversubscribed);
    backward: WG *i* waits on WG *i+1* (adversarial for any
    occupancy-bound scheduler)."""
    scripts: List[Script] = []
    for w in range(wgs):
        script: List[Action] = [(WORK, 100)]
        pred = w - 1 if forward else w + 1
        if 0 <= pred < wgs:
            script.append((WAIT, pred, 1))
        script.append((SET, w, 1))
        scripts.append(tuple(script))
    return canonicalize(LitmusProgram(
        wgs=wgs, scripts=tuple(scripts), flags=wgs,
        wgs_per_cu=wgs_per_cu, alias=alias))


def barrier_subset(
    wgs: int = 6,
    participants: Optional[int] = None,
    wgs_per_cu: int = 2,
    alias: Optional[str] = None,
) -> LitmusProgram:
    """A counter barrier over the first ``participants`` WGs (default
    all); the rest do independent work. Oversubscribed participant sets
    recreate the paper's barrier deadlock under occupancy-bound
    scheduling."""
    k = wgs if participants is None else participants
    scripts: List[Script] = []
    for w in range(wgs):
        if w < k:
            scripts.append(((WORK, 100 + 50 * (w % 3)),
                            (ADD, 0, 1), (WAITC, 0, k)))
        else:
            scripts.append(((WORK, 200),))
    return canonicalize(LitmusProgram(
        wgs=wgs, scripts=tuple(scripts), counters=1,
        wgs_per_cu=wgs_per_cu, alias=alias))


def unreachable_wait(alias: Optional[str] = None) -> LitmusProgram:
    """The vacuity fixture: the only wait hides behind an ``if_flag``
    guard on a flag no script ever sets, so it is never reached and
    every model's verdict must be *vacuous*, not *satisfied*."""
    wg0: Script = ((WORK, 100), (IF_FLAG, 0, 1, ((WAIT, 1, 1),)))
    wg1: Script = ((WORK, 100),)
    return canonicalize(LitmusProgram(
        wgs=2, scripts=(wg0, wg1), flags=2, wgs_per_cu=2, alias=alias))


def unsatisfiable_wait(alias: Optional[str] = None) -> LitmusProgram:
    """A programming bug, not a scheduling failure: WG0 waits on a flag
    nobody sets. Every model *allows* the resulting hang (no fairness
    obligation can satisfy the wait), so all policies may deadlock."""
    wg0: Script = ((WAIT, 0, 1),)
    wg1: Script = ((WORK, 200),)
    return canonicalize(LitmusProgram(
        wgs=2, scripts=(wg0, wg1), flags=1, wgs_per_cu=2, alias=alias))


# ---------------------------------------------------------------------------
# seeded random generation (the CLI / smoke exploration surface)
# ---------------------------------------------------------------------------

def random_program(rng: random.Random) -> LitmusProgram:
    """One random adversarial program, drawn from the template families
    with randomized scale, occupancy and resource-loss parameters.
    Deterministic for a given :class:`random.Random` state."""
    family = rng.choice(
        ("handoff", "handoff", "producer_consumer", "chain",
         "barrier_subset", "unreachable", "unsatisfiable"))
    wgs_per_cu = rng.randint(1, 3)
    if family == "handoff":
        loss = rng.random() < 0.5
        restore = loss and rng.random() < 0.4
        loss_at = round(rng.uniform(0.5, 3.0), 1) if loss else None
        return handoff(
            wgs=rng.randint(2, 6),
            wgs_per_cu=wgs_per_cu,
            rounds=rng.randint(1, 3),
            cs_cycles=rng.randrange(100, 800, 50),
            loss_at_us=loss_at,
            restore_at_us=(round(loss_at + rng.uniform(1.0, 4.0), 1)
                           if restore else None),
        )
    if family == "producer_consumer":
        return producer_consumer(
            consumers=rng.randint(2, 6),
            wgs_per_cu=wgs_per_cu,
            produce_cycles=rng.randrange(100, 600, 50),
        )
    if family == "chain":
        return chain(
            wgs=rng.randint(3, 7),
            wgs_per_cu=wgs_per_cu,
            forward=rng.random() < 0.5,
        )
    if family == "barrier_subset":
        wgs = rng.randint(3, 7)
        return barrier_subset(
            wgs=wgs,
            participants=rng.randint(2, wgs),
            wgs_per_cu=wgs_per_cu,
        )
    if family == "unreachable":
        return unreachable_wait()
    return unsatisfiable_wait()


def random_corpus(seed: int, count: int) -> List[LitmusProgram]:
    """``count`` distinct random programs from one seed (deduplicated
    by content-addressed name, drawing more as needed)."""
    rng = random.Random(seed)
    out: List[LitmusProgram] = []
    seen: Set[str] = set()
    attempts = 0
    while len(out) < count and attempts < count * 50:
        attempts += 1
        program = random_program(rng)
        if program.name not in seen:
            seen.add(program.name)
            out.append(program)
    return out


# ---------------------------------------------------------------------------
# hypothesis strategies (property tests; exploration stays opt-in)
# ---------------------------------------------------------------------------

def program_strategy():
    """A hypothesis strategy over well-formed canonical programs.

    Imported lazily so the runtime package works without hypothesis
    installed (only the property tests need it)."""
    import hypothesis.strategies as st

    handoffs = st.builds(
        handoff,
        wgs=st.integers(2, 5),
        wgs_per_cu=st.integers(1, 3),
        rounds=st.integers(1, 3),
        cs_cycles=st.integers(100, 600),
        loss_at_us=st.one_of(st.none(), st.floats(0.5, 3.0)),
    )
    prodcons = st.builds(
        producer_consumer,
        consumers=st.integers(2, 5),
        wgs_per_cu=st.integers(1, 3),
        produce_cycles=st.integers(100, 500),
    )
    chains = st.builds(
        chain,
        wgs=st.integers(3, 6),
        wgs_per_cu=st.integers(1, 3),
        forward=st.booleans(),
    )
    barriers = st.integers(3, 6).flatmap(
        lambda wgs: st.builds(
            barrier_subset,
            wgs=st.just(wgs),
            participants=st.integers(2, wgs),
            wgs_per_cu=st.integers(1, 3),
        ))
    fixtures = st.sampled_from(["unreachable", "unsatisfiable"]).map(
        lambda kind: unreachable_wait() if kind == "unreachable"
        else unsatisfiable_wait())
    return st.one_of(handoffs, prodcons, chains, barriers, fixtures)

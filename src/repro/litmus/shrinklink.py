"""Shrink link: violating litmus schedules become minimal repro bundles.

When the oracle observes a contract violation (a cell the static spec
calls ``MUST_COMPLETE`` that hung, or a model judged ``violated`` that
the policy claims), the offending (program, policy, seed) triple is
packaged as a self-contained *litmus bundle* — the litmus counterpart
of :mod:`repro.recovery.bundle`, with its own ``kind`` because a
litmus request carries a whole program spec instead of a registry
benchmark name — and handed to a delta-debugging loop modeled on
:mod:`repro.recovery.shrink`: greedy, deterministic, every accepted
step strictly reduces the program-size metric, re-replaying after each
candidate and keeping only steps that preserve the violation.

Program reductions, in fixed order: drop a whole WG script, drop a
single action (validity-checked — e.g. dropping an ``acquire`` also
drops its ``release``), halve a ``work`` duration, drop the restore
window. The result reuses :class:`repro.recovery.shrink.ShrinkResult`
for rendering and the shrink log.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.core.policies import PolicySpec, named_policy
from repro.errors import ConfigError, ReproError
from repro.litmus.generate import (
    ACQUIRE,
    LitmusProgram,
    RELEASE,
    WORK,
    canonicalize,
    validate_program,
)
from repro.litmus.models import VIOLATED

# NOTE: repro.recovery (and repro.experiments.cache, imported lazily in
# make_litmus_bundle) must NOT be imported at module scope: the
# workloads registry exposes the litmus corpus, so experiments.cache ->
# runner -> workloads -> litmus -> recovery -> bundle -> cache would
# close an import cycle. Mirror recovery.shrink's default here instead.
DEFAULT_MAX_TRIALS = 200

#: litmus bundles are their own schema (and version) — a litmus request
#: replays a generated program, not a registry benchmark
LITMUS_BUNDLE_VERSION = 1
LITMUS_BUNDLE_KIND = "awg-repro-litmus-bundle"

LITMUS_BUNDLE_KEYS = ("version", "kind", "request", "expected",
                      "provenance")


@dataclass(frozen=True)
class LitmusRequest:
    """One replayable litmus cell: program + policy + seed."""

    program: LitmusProgram
    policy: PolicySpec
    seed: int = 1

    def spec(self) -> Dict[str, Any]:
        return {
            "program": self.program.spec(),
            "policy": self.policy.spec(),
            "seed": self.seed,
        }

    @classmethod
    def from_spec(cls, spec: Dict[str, Any]) -> "LitmusRequest":
        return cls(
            program=LitmusProgram.from_spec(spec["program"]),
            policy=PolicySpec.from_spec(spec["policy"]),
            seed=int(spec.get("seed", 1)),
        )

    def execute(self):
        from repro.litmus.oracle import run_litmus

        return run_litmus(self.program, self.policy, seed=self.seed)


# ---------------------------------------------------------------------------
# bundle documents
# ---------------------------------------------------------------------------

def make_litmus_bundle(
    request: LitmusRequest,
    expected: Dict[str, Any],
) -> Dict[str, Any]:
    """Build a bundle for one violating cell.

    ``expected`` modes: ``{"mode": "model-violation", "model": M}`` (the
    replay must judge model M ``violated`` again) or
    ``{"mode": "contract", ...}`` (the replay must hang on a cell the
    spec calls MUST_COMPLETE again)."""
    from repro.experiments.cache import code_fingerprint

    return {
        "version": LITMUS_BUNDLE_VERSION,
        "kind": LITMUS_BUNDLE_KIND,
        "request": request.spec(),
        "expected": expected,
        "provenance": {
            "fingerprint": code_fingerprint(),
            "python": sys.version.split()[0],
            "created_at": time.time(),
        },
    }


def validate_litmus_bundle(bundle: Any) -> Dict[str, Any]:
    if not isinstance(bundle, dict):
        raise ConfigError("litmus bundle must be a JSON object")
    if bundle.get("kind") != LITMUS_BUNDLE_KIND:
        raise ConfigError(
            f"not a litmus bundle (kind={bundle.get('kind')!r}, expected "
            f"{LITMUS_BUNDLE_KIND!r})")
    if bundle.get("version") != LITMUS_BUNDLE_VERSION:
        raise ConfigError(
            f"litmus bundle version {bundle.get('version')!r} not "
            f"supported (this build reads {LITMUS_BUNDLE_VERSION})")
    missing = [k for k in LITMUS_BUNDLE_KEYS if k not in bundle]
    if missing:
        raise ConfigError(f"litmus bundle missing keys: {missing}")
    expected = bundle["expected"]
    if not isinstance(expected, dict) or expected.get("mode") not in (
            "model-violation", "contract"):
        raise ConfigError(
            "litmus bundle expected clause needs mode "
            "'model-violation' or 'contract'")
    if expected["mode"] == "model-violation" and "model" not in expected:
        raise ConfigError("model-violation bundles must name the model")
    return bundle


def litmus_bundle_name(bundle: Dict[str, Any]) -> str:
    request = bundle["request"]
    canonical = json.dumps(request, sort_keys=True, separators=(",", ":"),
                           default=str)
    digest = hashlib.sha256(canonical.encode()).hexdigest()[:8]
    policy = request.get("policy", {}).get("name", "policy")
    # generated/shrunk programs have no alias; the digest still names them
    program = request.get("program", {}).get("alias") or "generated"
    return (f"litmus-{program}-{policy}-{bundle['expected']['mode']}-"
            f"{digest}.json")


def write_litmus_bundle(bundle: Dict[str, Any],
                        out_dir: os.PathLike) -> Path:
    validate_litmus_bundle(bundle)
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / litmus_bundle_name(bundle)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    try:
        with open(tmp, "w") as fh:
            fh.write(json.dumps(bundle, indent=2, sort_keys=True,
                                default=str))
            fh.flush()
            os.fsync(fh.fileno())
        tmp.replace(path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return path


def load_litmus_bundle(path: os.PathLike) -> Dict[str, Any]:
    try:
        document = json.loads(Path(path).read_text())
    except FileNotFoundError:
        raise ConfigError(f"no litmus bundle at {path}")
    except (OSError, ValueError) as exc:
        raise ConfigError(f"unreadable litmus bundle {path}: {exc}")
    return validate_litmus_bundle(document)


# ---------------------------------------------------------------------------
# replay
# ---------------------------------------------------------------------------

def replay_litmus_bundle(bundle: Dict[str, Any]) -> Dict[str, Any]:
    """Re-run a litmus bundle and check its violation recurs."""
    validate_litmus_bundle(bundle)
    request = LitmusRequest.from_spec(bundle["request"])
    expected = bundle["expected"]
    run = request.execute()
    if expected["mode"] == "model-violation":
        judgment = run.judgments.get(expected["model"])
        reproduced = judgment is not None and judgment.verdict == VIOLATED
        observed = {
            "mode": "model-violation",
            "model": expected["model"],
            "verdict": judgment.verdict if judgment else "missing",
        }
    else:  # contract
        reproduced = run.contract_violation is not None
        observed = {
            "mode": "contract",
            "violation": run.contract_violation,
            "completed": run.outcome.completed,
        }
    return {
        "reproduced": reproduced,
        "expected": expected,
        "observed": observed,
        "request": bundle["request"],
    }


# ---------------------------------------------------------------------------
# program-level delta debugging
# ---------------------------------------------------------------------------

def program_size(program: LitmusProgram) -> int:
    """Monotone size metric: WG count + action count + work budget."""
    actions = sum(len(script) for script in program.scripts)
    work = sum(a[1] for script in program.scripts
               for a in script if a[0] == WORK)
    restore = 1 if program.restore_at_us is not None else 0
    return program.wgs + actions + work // 100 + restore


def _try_canonical(program: LitmusProgram) -> Optional[LitmusProgram]:
    try:
        validate_program(program)
        return canonicalize(program)
    except ConfigError:
        return None


def _drop_action(script, index) -> Tuple[Any, ...]:
    """Drop one action; an ``acquire`` takes its matching ``release``
    along (and vice versa) so mutex discipline survives."""
    action = script[index]
    partner = None
    if action[0] == ACQUIRE:
        for j in range(index + 1, len(script)):
            if script[j][0] == RELEASE and script[j][1] == action[1]:
                partner = j
                break
    elif action[0] == RELEASE:
        for j in range(index - 1, -1, -1):
            if script[j][0] == ACQUIRE and script[j][1] == action[1]:
                partner = j
                break
    drop = {index, partner} if partner is not None else {index}
    return tuple(a for j, a in enumerate(script) if j not in drop)


def _candidates(
    program: LitmusProgram,
) -> Iterator[Tuple[str, str, str, LitmusProgram]]:
    """Every one-step reduction, deterministic order: whole WGs first
    (biggest steps), then single actions, then work halving, then the
    restore window."""
    if program.wgs > 1:
        for w in range(program.wgs):
            scripts = tuple(s for i, s in enumerate(program.scripts)
                            if i != w)
            candidate = _try_canonical(replace(
                program, wgs=program.wgs - 1, scripts=scripts, alias=None))
            if candidate is not None:
                yield (f"program.wg{w}", "present", "dropped", candidate)
    for w, script in enumerate(program.scripts):
        for i in range(len(script)):
            shrunk = _drop_action(script, i)
            if len(shrunk) == len(script):
                continue
            scripts = tuple(shrunk if j == w else s
                            for j, s in enumerate(program.scripts))
            candidate = _try_canonical(replace(program, scripts=scripts,
                                               alias=None))
            if candidate is not None:
                yield (f"program.wg{w}[{i}]", script[i][0], "dropped",
                       candidate)
    for w, script in enumerate(program.scripts):
        for i, action in enumerate(script):
            if action[0] == WORK and action[1] > 100:
                halved = script[:i] + ((WORK, action[1] // 2),) \
                    + script[i + 1:]
                scripts = tuple(halved if j == w else s
                                for j, s in enumerate(program.scripts))
                candidate = _try_canonical(replace(
                    program, scripts=scripts, alias=None))
                if candidate is not None:
                    yield (f"program.wg{w}[{i}].work", str(action[1]),
                           str(action[1] // 2), candidate)
    if program.restore_at_us is not None:
        candidate = _try_canonical(replace(program, restore_at_us=None,
                                           alias=None))
        if candidate is not None:
            yield ("program.restore_at_us", str(program.restore_at_us),
                   "dropped", candidate)


def shrink_litmus_bundle(
    bundle: Dict[str, Any],
    max_trials: int = DEFAULT_MAX_TRIALS,
    replay=None,
) -> "ShrinkResult":
    """Minimize a violating litmus bundle, preserving its violation.

    Same contract as :func:`repro.recovery.shrink.shrink_bundle`: the
    input must reproduce as-is, the search is greedy and deterministic,
    and every accepted step strictly shrinks :func:`program_size`."""
    from repro.recovery.shrink import ShrinkResult

    validate_litmus_bundle(bundle)
    replay = replay or replay_litmus_bundle
    expected = bundle["expected"]
    request = LitmusRequest.from_spec(bundle["request"])

    def bundle_for(req: LitmusRequest) -> Dict[str, Any]:
        return make_litmus_bundle(req, expected)

    trials = 0

    def reproduces(req: LitmusRequest) -> bool:
        nonlocal trials
        trials += 1
        try:
            return bool(replay(bundle_for(req))["reproduced"])
        except ReproError:
            return False

    initial_size = program_size(request.program)
    if not reproduces(request):
        raise ReproError(
            "litmus bundle does not reproduce its violation as-is; "
            "nothing to shrink (check the code fingerprint in its "
            "provenance)")

    log: List[Dict[str, Any]] = []
    step = 0
    improved = True
    current = request
    while improved and trials < max_trials:
        improved = False
        size = program_size(current.program)
        for dimension, src, dst, candidate in _candidates(current.program):
            if trials >= max_trials:
                break
            candidate_size = program_size(candidate)
            if candidate_size >= size:
                continue
            candidate_request = replace(current, program=candidate)
            accepted = reproduces(candidate_request)
            step += 1
            log.append({
                "step": step,
                "dimension": dimension,
                "from": src,
                "to": dst,
                "accepted": accepted,
                "size": candidate_size,
            })
            if accepted:
                current = candidate_request
                improved = True
                break

    return ShrinkResult(
        original=bundle,
        minimal=bundle_for(current),
        log=log,
        trials=trials,
        initial_size=initial_size,
        final_size=program_size(current.program),
    )


# ---------------------------------------------------------------------------
# oracle hook: emit (and optionally shrink) bundles for a report
# ---------------------------------------------------------------------------

def emit_violation_bundles(
    report,
    out_dir: os.PathLike,
    seed: int = 1,
    shrink: bool = False,
    max_trials: int = 40,
) -> List[Path]:
    """Write one bundle per contract-violating run in ``report``;
    with ``shrink=True`` each is minimized first (bounded trials so CI
    stays fast)."""
    paths: List[Path] = []
    for run in report.violating_runs():
        request = LitmusRequest(
            program=run.program,
            policy=named_policy(run.policy),
            seed=seed,
        )
        bundle = make_litmus_bundle(request, {
            "mode": "contract",
            "expected_verdict": run.expected,
        })
        if shrink:
            try:
                bundle = shrink_litmus_bundle(
                    bundle, max_trials=max_trials).minimal
            except ReproError:
                pass  # keep the unshrunk bundle if replay is flaky
        paths.append(write_litmus_bundle(bundle, out_dir))
    return paths

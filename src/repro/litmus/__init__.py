"""Progress-model litmus harness.

Executable OBE / Linear / IFP specs (:mod:`repro.litmus.models`), a
deterministic + hypothesis-driven litmus-program generator
(:mod:`repro.litmus.generate`), a differential oracle that runs every
program across the registered policies and judges the observed
schedules (:mod:`repro.litmus.oracle`), and a shrink link that turns
violating schedules into minimal self-contained repro bundles
(:mod:`repro.litmus.shrinklink`).
"""

from repro.litmus.generate import (
    LitmusProgram,
    canonicalize,
    interpret,
    program_name,
    program_strategy,
    random_corpus,
    validate_program,
)
from repro.litmus.models import (
    IFP,
    LINEAR,
    MODELS,
    OBE,
    SATISFIED,
    VACUOUS,
    VIOLATED,
    Judgment,
    ObservedSchedule,
    ProgressModel,
    claimed_model,
    expected_cell,
    judge_all,
    weaker_or_equal,
)
from repro.litmus.oracle import (
    LitmusReport,
    LitmusRun,
    golden_policies,
    run_corpus,
    run_litmus,
)
from repro.litmus.shrinklink import (
    LITMUS_BUNDLE_KIND,
    LitmusRequest,
    emit_violation_bundles,
    load_litmus_bundle,
    make_litmus_bundle,
    replay_litmus_bundle,
    shrink_litmus_bundle,
    write_litmus_bundle,
)

__all__ = [
    "LitmusProgram",
    "canonicalize",
    "interpret",
    "program_name",
    "program_strategy",
    "random_corpus",
    "validate_program",
    "OBE",
    "LINEAR",
    "IFP",
    "SATISFIED",
    "VIOLATED",
    "VACUOUS",
    "MODELS",
    "Judgment",
    "ObservedSchedule",
    "ProgressModel",
    "claimed_model",
    "expected_cell",
    "judge_all",
    "weaker_or_equal",
    "LitmusReport",
    "LitmusRun",
    "golden_policies",
    "run_corpus",
    "run_litmus",
    "LITMUS_BUNDLE_KIND",
    "LitmusRequest",
    "emit_violation_bundles",
    "load_litmus_bundle",
    "make_litmus_bundle",
    "replay_litmus_bundle",
    "shrink_litmus_bundle",
    "write_litmus_bundle",
]

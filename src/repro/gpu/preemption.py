"""Mid-execution resource loss (the paper's oversubscribed experiment).

§VI: "our oversubscribed experiment starts with 8 CUs and after 50 µs the
WGs from one CU are context switched out," emulating a kernel-scheduler
time slice ending or a high-priority kernel preempting. The disabled CU's
WGs are forcibly evicted; whether they can ever run again depends on the
scheduling policy — busy-waiting residents never yield, so the Baseline
deadlocks if an evicted WG held a lock or is needed for a barrier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.gpu import GPU


@dataclass(frozen=True)
class ResourceLossEvent:
    """Disable one CU (and evict its WGs) at a point in time."""

    at_us: float = 50.0
    cu_id: Optional[int] = None  # None = highest-numbered CU

    def schedule(self, gpu: "GPU") -> None:
        cu_id = self.cu_id if self.cu_id is not None else gpu.config.num_cus - 1
        delay = gpu.config.cycles(self.at_us)
        gpu.env.call_at(delay, lambda: self._apply(gpu, cu_id))

    def _apply(self, gpu: "GPU", cu_id: int) -> None:
        cu = gpu.cus[cu_id]
        cu.disable()
        victims = list(cu.resident)
        gpu.stats.counter("preemption.evictions").incr(len(victims))
        for wg in victims:
            wg.request_evict()
        gpu.resource_loss_applied = True


@dataclass(frozen=True)
class ResourceRestoreEvent:
    """Re-enable a previously disabled CU (kernel rescheduled with more
    resources) — used by dynamic-allocation examples and tests."""

    at_us: float
    cu_id: int

    def schedule(self, gpu: "GPU") -> None:
        delay = gpu.config.cycles(self.at_us)

        def _apply() -> None:
            gpu.cus[self.cu_id].enable()
            gpu.dispatcher.kick()

        gpu.env.call_at(delay, _apply)

"""Mid-execution resource loss (the paper's oversubscribed experiment).

§VI: "our oversubscribed experiment starts with 8 CUs and after 50 µs the
WGs from one CU are context switched out," emulating a kernel-scheduler
time slice ending or a high-priority kernel preempting. The disabled CU's
WGs are forcibly evicted; whether they can ever run again depends on the
scheduling policy — busy-waiting residents never yield, so the Baseline
deadlocks if an evicted WG held a lock or is needed for a barrier.

:func:`apply_resource_loss` / :func:`apply_resource_restore` are the
shared primitives; the scripted events below and the fault injector's
preemption storms (:mod:`repro.faults.injector`) both build on them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.gpu import GPU


def apply_resource_loss(gpu: "GPU", cu_id: int) -> int:
    """Disable one CU and evict its resident WGs; returns the number of
    evicted WGs. Idempotent for an already-disabled CU."""
    cu = gpu.cus[cu_id]
    if not cu.enabled:
        return 0
    cu.disable()
    # cu.resident is a set of WorkGroup objects (hashed by identity);
    # evict in wg_id order so the eviction sequence — and everything
    # downstream of it — is reproducible across processes and runs.
    victims = sorted(cu.resident, key=lambda wg: wg.wg_id)
    gpu.stats.counter("preemption.evictions").incr(len(victims))
    if gpu.tracer is not None:
        gpu.tracer.instant("preempt", "cu-loss", track="preempt",
                           cu=cu_id, evicted=[wg.wg_id for wg in victims])
    for wg in victims:
        wg.request_evict()
    gpu.resource_loss_applied = True
    return len(victims)


def apply_resource_restore(gpu: "GPU", cu_id: int) -> None:
    """Re-enable a previously disabled CU and let the dispatcher pack it."""
    gpu.cus[cu_id].enable()
    if gpu.tracer is not None:
        gpu.tracer.instant("preempt", "cu-restore", track="preempt",
                           cu=cu_id)
    gpu.dispatcher.kick()


@dataclass(frozen=True)
class ResourceLossEvent:
    """Disable one CU (and evict its WGs) at a point in time."""

    at_us: float = 50.0
    cu_id: Optional[int] = None  # None = highest-numbered CU

    def schedule(self, gpu: "GPU") -> None:
        cu_id = self.cu_id if self.cu_id is not None else gpu.config.num_cus - 1
        delay = gpu.config.cycles(self.at_us)
        gpu.env.call_at(delay, lambda: apply_resource_loss(gpu, cu_id))


@dataclass(frozen=True)
class ResourceRestoreEvent:
    """Re-enable a previously disabled CU (kernel rescheduled with more
    resources) — used by dynamic-allocation examples and tests."""

    at_us: float
    cu_id: int

    def schedule(self, gpu: "GPU") -> None:
        delay = gpu.config.cycles(self.at_us)
        gpu.env.call_at(delay, lambda: apply_resource_restore(gpu, self.cu_id))

"""Cooperative-groups-style launches: the prior-work alternative (§II.D).

CUDA 9 cooperative groups avoid inter-WG deadlock by *static resource
assignment*: a cooperative kernel is only dispatched once the scheduler
can make **every** WG of the grid resident simultaneously, and those
resources stay assigned for the kernel's lifetime. That restores safety
for busy-waiting code but has the costs the paper calls out:

- the launch fails (or waits arbitrarily long) if the grid exceeds the
  machine — no virtualization of execution resources;
- the kernel queues behind currently-running work until enough
  contiguous capacity frees up — significant scheduling delay;
- a mid-execution resource loss is simply not allowed (the paper's
  Figure 15 scenario is unsupported).

:func:`launch_cooperative` models exactly this contract on our GPU, so
AWG's dynamic allocation can be compared against it quantitatively
(``examples/cooperative_groups.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.errors import DeviceError
from repro.gpu.kernel import Kernel, KernelLaunch

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.gpu import GPU


@dataclass
class CooperativeLaunch:
    """Handle for a pending-or-running cooperative launch."""

    kernel: Kernel
    requested_at: int
    dispatched_at: Optional[int] = None
    inner: Optional[KernelLaunch] = None

    @property
    def scheduling_delay(self) -> Optional[int]:
        """Cycles the grid waited for all-resident capacity."""
        if self.dispatched_at is None:
            return None
        return self.dispatched_at - self.requested_at


def _free_capacity(gpu: "GPU") -> int:
    return sum(cu.free_slots for cu in gpu.cus)


def launch_cooperative(gpu: "GPU", kernel: Kernel) -> CooperativeLaunch:
    """Launch ``kernel`` under cooperative-groups semantics.

    Raises :class:`~repro.errors.DeviceError` if the grid can never fit
    (grid > machine capacity) — the hard portability limit static
    assignment imposes. Otherwise the launch waits until *all* WGs can
    be resident at once, then dispatches them together.
    """
    if kernel.grid_wgs > gpu.config.wg_capacity:
        raise DeviceError(
            f"cooperative launch of {kernel.grid_wgs} WGs exceeds machine "
            f"capacity {gpu.config.wg_capacity}: static resource "
            "assignment cannot virtualize execution resources"
        )
    handle = CooperativeLaunch(kernel=kernel, requested_at=gpu.env.now)
    gpu.hold_completion()

    def _try_dispatch() -> None:
        if handle.inner is not None:
            return
        if _free_capacity(gpu) < kernel.grid_wgs:
            # poll again when WGs finish and capacity frees up
            gpu.env.call_at(gpu.config.cp_check_interval, _try_dispatch)
            return
        handle.dispatched_at = gpu.env.now
        handle.inner = gpu.launch(kernel)
        gpu.release_completion()

    _try_dispatch()
    return handle

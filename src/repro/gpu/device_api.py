"""The device-side API kernels program against.

Kernel bodies are generators; every operation is invoked as
``result = yield from ctx.<op>(...)``. The API exposes:

- compute / plain loads and stores / LDS access / ``s_sleep``
- plain atomics (performed at the L2)
- ``__syncthreads`` (WG-local barrier among wavefronts)
- :meth:`WavefrontCtx.sync_wait` — the *one* synchronization waiting
  entry point. Primitives describe *what* they wait for (address,
  expected value, satisfaction predicate); the active scheduling policy
  decides *how* the wait is lowered: busy-wait loop, software exponential
  backoff, plain-atomic + ``wait`` instruction (with the §IV.C window of
  vulnerability), or a fused waiting atomic (§IV.D).

Every op begins with a preamble that charges SIMD issue bandwidth and
honours forced eviction (kernel-scheduler preemption) at op boundaries.

With ``REPRO_DEBUG_OPS=1`` in the environment, every device op returned
by the ctx is wrapped so that calling it *without* ``yield from`` (the
single most common kernel-authoring mistake — the op silently never
executes) is detected when the unstarted generator is garbage-collected,
and surfaced as a :class:`~repro.errors.DeviceError` naming the op.
"""

from __future__ import annotations

import functools
import os
from typing import TYPE_CHECKING, Callable, Optional, Tuple

from repro.core.conditions import WaitCondition
from repro.core.policies import WaitMechanism
from repro.core.syncmon import RegisterOutcome
from repro.errors import DeviceError
from repro.mem.atomics import AtomicOp, AtomicResult
from repro.mem.backing import wrap32

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.gpu import GPU
    from repro.gpu.workgroup import WGState, WorkGroup
    from repro.sim.resources import FifoResource


class _TrackedOp:
    """Generator proxy that reports device ops dropped without ``yield from``.

    Delegates the full generator protocol (PEP 380), so ``yield from`` and
    ``return`` values behave identically to the bare generator. If the op
    is finalized without ever being started — i.e. the kernel called
    ``ctx.op(...)`` as a statement and discarded the result — the drop is
    recorded on ``gpu.dropped_ops`` and reported as a DeviceError at the
    next op preamble (or at end of run). CPython's refcounting collects
    the discarded proxy at the offending statement, deterministically.
    """

    __slots__ = ("_gen", "_name", "_ctx", "_started", "_closed")

    def __init__(self, gen, name: str, ctx: "WavefrontCtx") -> None:
        self._gen = gen
        self._name = name
        self._ctx = ctx
        self._started = False
        self._closed = False

    def __iter__(self):
        return self

    def __next__(self):
        self._started = True
        return next(self._gen)

    def send(self, value):
        self._started = True
        return self._gen.send(value)

    def throw(self, *exc_info):
        self._started = True
        return self._gen.throw(*exc_info)

    def close(self):
        self._closed = True
        self._gen.close()

    def __del__(self):
        if not self._started and not self._closed:
            ctx = self._ctx
            ctx.gpu.dropped_ops.append(
                {"wg": ctx.wg_id, "wf": ctx.wf_id, "op": self._name}
            )
            self._gen.close()


def device_op(fn):
    """Mark a :class:`WavefrontCtx` generator method as a device op.

    Under ``REPRO_DEBUG_OPS=1`` the generator it returns is wrapped in
    :class:`_TrackedOp`; otherwise the bare generator is returned with
    zero overhead.
    """

    @functools.wraps(fn)
    def wrapper(self, *args, **kwargs):
        gen = fn(self, *args, **kwargs)
        if self._debug_ops:
            return _TrackedOp(gen, fn.__name__, self)
        return gen

    return wrapper


class WavefrontCtx:
    """Execution context handed to a kernel body (one per wavefront)."""

    def __init__(
        self,
        gpu: "GPU",
        wg: "WorkGroup",
        wf_id: int,
        simd: "FifoResource",
    ) -> None:
        self.gpu = gpu
        self.wg = wg
        self.wf_id = wf_id
        self.simd = simd
        self.args = wg.kernel.args
        self._debug_ops = os.environ.get("REPRO_DEBUG_OPS") == "1"

    def __getattr__(self, name: str):
        # Lazily bound device counters: ``self._c_loads()`` resolves to the
        # cached ``Counter.incr`` for "device.loads" on first use. Lazy (not
        # eager in __init__) so counters a kernel never touches stay out of
        # the registry and therefore out of stats snapshots.
        if name.startswith("_c_"):
            incr = self.gpu.stats.counter("device." + name[3:]).incr
            setattr(self, name, incr)
            return incr
        raise AttributeError(name)

    # -- identity ---------------------------------------------------------
    @property
    def wg_id(self) -> int:
        """Globally unique WG ID (dispatcher-assigned, across launches)."""
        return self.wg.wg_id

    @property
    def grid_index(self) -> int:
        """This WG's position within its own kernel's grid — use this to
        index grid-local data structures."""
        return self.wg.grid_index

    @property
    def is_master(self) -> bool:
        return self.wf_id == 0

    @property
    def env(self):
        return self.gpu.env

    def _cu_id(self) -> int:
        cu = self.wg.cu
        if cu is None:
            raise DeviceError(
                f"WG{self.wg_id} issued a device op while not resident"
            )
        return cu.cu_id

    # -- preamble: issue bandwidth + eviction gate ---------------------------
    def _interrupt_point(self):
        """Honour forced eviction / the suspension gate (op boundary)."""
        from repro.gpu.workgroup import WGState  # local import (cycle)

        wg = self.wg
        if self.is_master and wg.evict_requested and wg.state is WGState.RUNNING:
            yield from wg.evict_and_park()
        while wg.gate is not None and not self.is_master:
            yield wg.gate

    def _preamble(self):
        if self._debug_ops and self.gpu.dropped_ops:
            drop = self.gpu.dropped_ops[0]
            raise DeviceError(
                f"device op ctx.{drop['op']}() was called without 'yield from' "
                f"by WG{drop['wg']} wf{drop['wf']} and never executed "
                f"(REPRO_DEBUG_OPS=1)"
            )
        yield from self._interrupt_point()
        yield self.simd.service(self.gpu.config.issue_cycles)

    # -- compute and plain memory ---------------------------------------------
    @device_op
    def compute(self, cycles: int):
        """Burn ``cycles`` of ALU work.

        Long bursts are quantized so kernel-scheduler preemption can take
        effect at instruction granularity, not only at op boundaries."""
        yield from self._preamble()
        quantum = self.gpu.config.compute_quantum
        remaining = cycles
        while remaining > 0:
            step = min(quantum, remaining)
            yield self.env.timeout(step)
            remaining -= step
            self.gpu.note_execution()
            if remaining > 0:
                yield from self._interrupt_point()
        return None

    @device_op
    def load(self, addr: int):
        """Plain (cached) load; returns the word value."""
        yield from self._preamble()
        self._c_loads()
        value = yield self.gpu.hierarchy.load(
            self._cu_id(), addr, wg_id=self.wg_id
        )
        return value

    @device_op
    def store(self, addr: int, value: int):
        """Write-through store; completes at the L2."""
        yield from self._preamble()
        self._c_stores()
        yield self.gpu.hierarchy.store_word(
            self._cu_id(), addr, value, wg_id=self.wg_id
        )
        return None

    @device_op
    def lds_read(self, index: int):
        """Read the WG's local data share (scratchpad)."""
        yield from self._preamble()
        return self.wg.lds.get(index, 0)

    @device_op
    def lds_write(self, index: int, value: int):
        yield from self._preamble()
        self.wg.lds[index] = wrap32(value)
        return None

    @device_op
    def s_sleep(self, cycles: int):
        """The GCN ``s_sleep`` instruction: stall without releasing
        resources (no issue charge while asleep)."""
        self._c_sleeps()
        yield self.env.timeout(max(1, cycles))
        return None

    @device_op
    def syncthreads(self):
        """WG-local barrier among the WG's wavefronts."""
        yield from self._preamble()
        yield self.wg.syncthreads_arrive()
        return None

    def progress(self, tag: str = "progress") -> None:
        """Record a forward-progress event (feeds the deadlock watchdog)."""
        self.gpu.note_progress(tag)

    # -- plain atomics -----------------------------------------------------------
    @device_op
    def atomic(
        self,
        op: AtomicOp,
        addr: int,
        operand: int = 0,
        operand2: int = 0,
    ):
        """Perform an atomic at the L2; returns the :class:`AtomicResult`."""
        yield from self._preamble()
        self._c_atomics()
        res = yield self.gpu.hierarchy.atomic(
            self._cu_id(), op, addr, operand, operand2, wg_id=self.wg_id
        )
        return res

    @device_op
    def atomic_load(self, addr: int):
        res = yield from self.atomic(AtomicOp.LOAD, addr)
        return res.old

    @device_op
    def atomic_add(self, addr: int, value: int = 1):
        res = yield from self.atomic(AtomicOp.ADD, addr, value)
        return res.old

    @device_op
    def atomic_sub(self, addr: int, value: int = 1):
        res = yield from self.atomic(AtomicOp.SUB, addr, value)
        return res.old

    @device_op
    def atomic_exch(self, addr: int, value: int):
        res = yield from self.atomic(AtomicOp.EXCH, addr, value)
        return res.old

    @device_op
    def atomic_store(self, addr: int, value: int):
        yield from self.atomic(AtomicOp.STORE, addr, value)
        return None

    @device_op
    def atomic_cas(self, addr: int, compare: int, swap: int):
        res = yield from self.atomic(AtomicOp.CAS, addr, compare, swap)
        return res.old

    # -- the waiting entry point ----------------------------------------------------
    @device_op
    def sync_wait(
        self,
        addr: int,
        expected: int,
        op: AtomicOp = AtomicOp.LOAD,
        operand: int = 0,
        operand2: int = 0,
        satisfied: Optional[Callable[[int], bool]] = None,
        exclusive: bool = False,
        software_backoff: bool = False,
    ):
        """Wait (Mesa semantics) until ``op`` on ``addr`` observes a
        satisfying value; returns the final :class:`AtomicResult`.

        ``expected`` is the value the hardware condition matches on;
        ``satisfied`` is the software re-check predicate over the value
        the atomic returned (defaults to equality with ``expected`` —
        pass e.g. ``lambda v: v >= target`` for monotonic barriers).
        ``exclusive`` hints consumable conditions to the MinResume oracle.
        ``software_backoff`` makes busy-waiting policies back off
        exponentially (the SPMBO benchmark variants).
        """
        if satisfied is None:
            want = wrap32(expected)
            satisfied = lambda v: v == want  # noqa: E731
        policy = self.gpu.policy
        mech = policy.mechanism
        cond = WaitCondition(addr, expected, exclusive=exclusive)

        if mech is WaitMechanism.WAITING_ATOMIC:
            while True:
                res, outcome = yield from self._waiting_atomic(
                    op, addr, operand, operand2, cond, satisfied
                )
                if res.success:
                    return res
                yield from self.wg.wait_on_condition(cond, outcome)

        if mech is WaitMechanism.WAIT_INSTR:
            while True:
                res = yield from self.atomic(op, addr, operand, operand2)
                if satisfied(res.old):
                    res.success = True
                    return res
                # Window of vulnerability: the releasing update can land
                # between this point and the wait instruction's arrival
                # at the L2 (§IV.C.iv / Figure 10 left).
                outcome = yield from self._wait_instr(cond)
                yield from self.wg.wait_on_condition(cond, outcome)

        # Software-only mechanisms: busy-wait or exponential backoff.
        backoff = policy.backoff_min
        cap = policy.backoff_max or self.gpu.config.sleep_backoff_max
        use_backoff = mech is WaitMechanism.SLEEP_BACKOFF or software_backoff
        while True:
            res = yield from self.atomic(op, addr, operand, operand2)
            if satisfied(res.old):
                res.success = True
                return res
            self._c_spin_retries()
            if use_backoff:
                yield from self.s_sleep(backoff)
                backoff = min(backoff * 2, cap)

    def _waiting_atomic(
        self,
        op: AtomicOp,
        addr: int,
        operand: int,
        operand2: int,
        cond: WaitCondition,
        satisfied: Callable[[int], bool],
    ):
        """Issue one waiting atomic; comparison + SyncMon registration
        happen atomically at the L2 (the race-free point)."""
        yield from self._preamble()
        gpu = self.gpu
        self._c_atomics()
        self._c_waiting_atomics()
        holder: dict = {}

        def _hook(result: AtomicResult) -> None:
            ok = satisfied(result.old)
            result.success = ok
            if not ok and gpu.policy.uses_monitor:
                holder["outcome"] = gpu.syncmon.register(self.wg_id, cond)

        # A compare-and-wait (LOAD-form waiting atomic) never modifies the
        # word: it is a read probe at the L2 and does not hold the bank
        # for a full read-modify-write.
        service = (
            gpu.config.l2_load_service if op is AtomicOp.LOAD else None
        )
        res = yield gpu.hierarchy.atomic(
            self._cu_id(), op, addr, operand, operand2,
            wg_id=self.wg_id, l2_hook=_hook, service=service,
        )
        return res, holder.get("outcome")

    def _wait_instr(self, cond: WaitCondition):
        """The standalone ``wait`` instruction (MonR/MonRS): a separate
        trip to the L2 that arms the SyncMon — racy by construction."""
        yield from self._preamble()
        gpu = self.gpu
        self._c_wait_instrs()
        bank = gpu.hierarchy.bank_for(cond.addr)
        done = bank.service(gpu.config.l2_store_service)
        result = gpu.env.event()

        def _arm(_ev) -> None:
            outcome = gpu.syncmon.register(self.wg_id, cond)
            result.try_succeed(outcome)

        done.add_callback(_arm)
        outcome = yield result
        return outcome

    # -- convenience acquire patterns used by the sync library ------------------
    @device_op
    def acquire_test_and_set(self, lock_addr: int, software_backoff: bool = False):
        """Acquire a test-and-set lock: exchange 1, wait for old == 0."""
        res = yield from self.sync_wait(
            lock_addr,
            expected=0,
            op=AtomicOp.EXCH,
            operand=1,
            exclusive=True,
            software_backoff=software_backoff,
        )
        return res

    @device_op
    def wait_for_value(
        self,
        addr: int,
        expected: int,
        satisfied: Optional[Callable[[int], bool]] = None,
        exclusive: bool = False,
        software_backoff: bool = False,
    ):
        """Wait until an atomic load of ``addr`` satisfies the predicate
        (the paper's compare-and-wait instruction, Figure 10 right)."""
        res = yield from self.sync_wait(
            addr,
            expected=expected,
            op=AtomicOp.LOAD,
            satisfied=satisfied,
            exclusive=exclusive,
            software_backoff=software_backoff,
        )
        return res

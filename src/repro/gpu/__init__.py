"""GPU execution-model substrate.

Models the hierarchy of GPU execution abstractions the paper builds on:
kernels are split into work-groups (WGs), WGs into wavefronts, and
wavefronts execute device operations (compute, loads/stores, atomics,
sleeps, local barriers) as coroutines. A dispatcher packs WGs onto
compute units; the command processor performs the slow operations
(context switches, Monitor Log parsing) off the critical path.
"""

from repro.gpu.config import GPUConfig
from repro.gpu.cooperative import CooperativeLaunch, launch_cooperative
from repro.gpu.gpu import GPU, RunOutcome
from repro.gpu.kernel import Kernel, KernelLaunch
from repro.gpu.kernel_scheduler import PriorityKernelScheduler
from repro.gpu.preemption import ResourceLossEvent, ResourceRestoreEvent
from repro.gpu.workgroup import WGState

__all__ = [
    "CooperativeLaunch",
    "GPU",
    "GPUConfig",
    "Kernel",
    "KernelLaunch",
    "PriorityKernelScheduler",
    "ResourceLossEvent",
    "ResourceRestoreEvent",
    "RunOutcome",
    "WGState",
    "launch_cooperative",
]

"""The top-level GPU device: wiring, kernel launch, run loop, watchdog.

Construction wires together the engine, memory hierarchy, SyncMon,
Monitor Log, Command Processor, dispatcher and CUs according to one
:class:`~repro.gpu.config.GPUConfig` and one
:class:`~repro.core.policies.PolicySpec`. :meth:`GPU.run` drives the
event loop until the launched kernels complete, the progress watchdog
declares deadlock, or the cycle budget is exhausted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.monitor_log import MonitorLog
from repro.core.policies import PolicySpec
from repro.core.syncmon import SyncMon
from repro.errors import DeadlockError, DeviceError
from repro.faults.injector import FaultInjector
from repro.gpu.compute_unit import ComputeUnit
from repro.gpu.config import GPUConfig
from repro.gpu.command_processor import CommandProcessor
from repro.gpu.diagnostics import (
    build_stall_report,
    classify_stagnation,
    summarize_stalls,
)
from repro.gpu.dispatcher import Dispatcher
from repro.gpu.kernel import Kernel, KernelLaunch
from repro.gpu.wavefront import Wavefront
from repro.gpu.workgroup import WGState, WorkGroup
from repro.mem.backing import BackingStore
from repro.mem.hierarchy import MemoryHierarchy
from repro.sim.engine import Engine
from repro.sim.rng import RngStream
from repro.sim.stats import StatRegistry
from repro.trace.config import TraceConfig
from repro.trace.tracer import Tracer


@dataclass
class RunOutcome:
    """Result of one :meth:`GPU.run`."""

    completed: bool
    deadlocked: bool
    cycles: int
    reason: str
    stats: Dict[str, float] = field(default_factory=dict)
    wg_running_cycles: int = 0
    wg_waiting_cycles: int = 0
    context_switches: int = 0
    #: structured watchdog diagnosis (kind, reason, per-WG stall report);
    #: None unless the run deadlocked or livelocked
    diagnosis: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        return self.completed and not self.deadlocked


class GPU:
    """One simulated GPU device under one scheduling policy."""

    def __init__(
        self,
        config: GPUConfig,
        policy: PolicySpec,
        seed: Optional[int] = None,
    ) -> None:
        self.config = config
        self.policy = policy
        self.env = Engine()
        self.rng = RngStream(seed if seed is not None else config.seed, "gpu")
        self.stats = StatRegistry(self.env)
        trace_cfg = config.trace
        if trace_cfg is None and config.trace_states:
            trace_cfg = TraceConfig(categories=("wg",))
        #: structured event tracer (:mod:`repro.trace`); None = tracing off
        self.tracer: Optional[Tracer] = (
            Tracer(self.env, trace_cfg, self.stats)
            if trace_cfg is not None else None
        )
        self.store = BackingStore()
        self.hierarchy = MemoryHierarchy(self.env, config, self.store)
        self.monitor_log = MonitorLog(self.store, config.monitor_log_entries)
        self.syncmon = SyncMon(
            self.env, config, self.hierarchy, self.monitor_log,
            policy, self.rng.child("syncmon"),
        )
        self.cus: List[ComputeUnit] = [
            ComputeUnit(self.env, config, i) for i in range(config.num_cus)
        ]
        self.dispatcher = Dispatcher(self)
        self.cp = CommandProcessor(self)
        self.hierarchy.atomic_observer = self.syncmon.on_atomic
        self.hierarchy.tracer = self.tracer
        self.syncmon.tracer = self.tracer
        self.syncmon.resume_hook = self.dispatcher.notify_met
        self.wgs: List[WorkGroup] = []
        self.launches: List[KernelLaunch] = []
        self.progress_count = 0
        self.advancement_count = 0
        self._finished = 0
        self.resource_loss_applied = False
        self._completion_holds = 0
        self.fault_injector: Optional[FaultInjector] = None
        if config.fault_plan is not None and not config.fault_plan.is_noop:
            self.fault_injector = FaultInjector(self, config.fault_plan)
        #: device ops created but never started (REPRO_DEBUG_OPS=1);
        #: each entry is {"wg", "wf", "op"} — see device_api._TrackedOp
        self.dropped_ops: List[Dict[str, Any]] = []
        self.sanitizer = None
        if config.sanitize:
            from repro.analysis.sanitizer import SyncSanitizer  # cycle

            self.sanitizer = SyncSanitizer(self)
            self.hierarchy.sanitizer = self.sanitizer

    @property
    def state_trace(self) -> List[tuple]:
        """(cycle, wg_id, WGState) transitions, derived from the tracer's
        ``wg`` span stream (the single source of truth); [] with tracing
        off or the ``wg`` category filtered out."""
        if self.tracer is None:
            return []
        return [
            (cycle, wg_id, WGState(name))
            for cycle, wg_id, name in self.tracer.wg_transitions()
        ]

    # ------------------------------------------------------------------
    # memory helpers for workloads
    # ------------------------------------------------------------------
    def malloc(self, nbytes: int, align: int = 4) -> int:
        return self.store.alloc(nbytes, align)

    def alloc_sync_vars(self, count: int) -> List[int]:
        """Allocate ``count`` synchronization variables, one per cache
        line (64 B padding, as the paper's benchmarks do)."""
        stride = self.config.block_bytes
        base = self.store.alloc(count * stride, align=stride)
        return [base + i * stride for i in range(count)]

    # ------------------------------------------------------------------
    # kernel launch
    # ------------------------------------------------------------------
    def launch(self, kernel: Kernel) -> KernelLaunch:
        """Create the kernel's WGs and hand them to the dispatcher.

        The dispatcher assigns unique WG IDs (§V.B: "the dispatcher is
        responsible for assigning a unique ID to each dispatched WG")."""
        ids = []
        for grid_index in range(kernel.grid_wgs):
            wg_id = len(self.wgs)
            wg = WorkGroup(self, kernel, wg_id, grid_index=grid_index)
            wg.wavefronts = [
                Wavefront(self, wg, i)
                for i in range(kernel.wavefronts_per_wg if kernel.worker_body else 1)
            ]
            self.wgs.append(wg)
            self.dispatcher.add(wg)
            ids.append(wg_id)
        launch = KernelLaunch(kernel=kernel, wg_ids=ids, launched_at=self.env.now)
        self.launches.append(launch)
        return launch

    # ------------------------------------------------------------------
    # progress and completion
    # ------------------------------------------------------------------
    def note_progress(self, tag: str = "progress") -> None:
        """Semantic advancement: a condition met, a WG resumed or done.
        Feeds both the deadlock watchdog and the livelock detector —
        instruction execution alone (:meth:`note_execution`) does not
        count as advancement."""
        self.progress_count += 1
        self.advancement_count += 1
        self.stats.counter(f"progress.{tag}").incr()

    def note_execution(self) -> None:
        """Lightweight watchdog feed: executing instructions *is* forward
        progress (a busy-wait spin loop executes none — it only retries
        atomics — so deadlock detection is unaffected)."""
        self.progress_count += 1

    def wg_done(self, wg: WorkGroup) -> None:
        wg.set_state(WGState.DONE)
        if wg.cu is not None:
            wg.cu.release(wg)
            wg.cu = None
        wg.open_gate()
        self._finished += 1
        self.note_progress("wg_done")
        wg.done_event.try_succeed()
        self.dispatcher.kick()

    @property
    def finished_wgs(self) -> int:
        return self._finished

    def hold_completion(self) -> None:
        """Keep :meth:`run` going even with no launched WGs outstanding
        (used by deferred launches, e.g. cooperative groups)."""
        self._completion_holds += 1

    def release_completion(self) -> None:
        self._completion_holds -= 1

    # ------------------------------------------------------------------
    # the run loop
    # ------------------------------------------------------------------
    def run(self, raise_on_deadlock: bool = False) -> RunOutcome:
        cfg = self.config
        env = self.env
        last_progress = -1
        last_advance = -1
        stagnant_windows = 0
        next_check = cfg.deadlock_window
        reason = "completed"
        deadlocked = False

        def outstanding() -> bool:
            # len(self.wgs) is re-read each time: deferred launches
            # (cooperative groups) add WGs mid-run and hold completion
            # until they dispatch.
            return self._finished < len(self.wgs) or self._completion_holds > 0

        def halted() -> bool:
            return not outstanding()

        while outstanding():
            if env.now >= cfg.max_cycles:
                reason = "max_cycles"
                deadlocked = True
                break
            if env.now >= next_check:
                if self.progress_count == last_progress:
                    # No events of any kind: classic deadlock.
                    reason = "watchdog"
                    deadlocked = True
                    break
                if cfg.livelock_windows > 0 and self.advancement_count == last_advance:
                    # Instructions retire but no condition ever advances:
                    # livelock (e.g. polling loops burning ALU cycles).
                    # Requires several consecutive stagnant windows so a
                    # long fault-free compute phase is not misdiagnosed.
                    stagnant_windows += 1
                    if stagnant_windows >= cfg.livelock_windows:
                        reason = "livelock"
                        deadlocked = True
                        break
                else:
                    stagnant_windows = 0
                last_progress = self.progress_count
                last_advance = self.advancement_count
                next_check = env.now + cfg.deadlock_window
            # Hot path: fire whole same-timestamp batches up to the next
            # watchdog/cycle-budget boundary, re-checking the completion
            # condition only between timestamps. Equivalent to the old
            # per-event step() loop (a mid-batch completion used to exit
            # here and finish the batch in the same-cycle drain below),
            # without per-event Python dispatch in between.
            boundary = cfg.max_cycles if cfg.max_cycles < next_check else next_check
            env.drain_batches(boundary, halted)
            if not outstanding():
                break
            # The next event (if any) is at or past the boundary. The old
            # loop fired exactly one such event before its checks could
            # notice the crossing; preserve that knife-edge.
            if not env.step():
                reason = "no_events"
                deadlocked = True
                break

        if not deadlocked:
            # Drain same-cycle completion events (e.g. per-kernel AllOf
            # callbacks scheduled by the final WG's completion).
            env.run(until=env.now)

        if self.tracer is not None:
            if deadlocked:
                self.tracer.instant(
                    "wg", f"watchdog:{reason}", track="watchdog",
                    finished=self._finished, total=len(self.wgs),
                )
            # Scheduler health counters (engine.* in Perfetto): sampled
            # once at end of run from counters the engine maintains
            # anyway, so recording them never perturbs the simulation.
            for metric, value in env.metrics().items():
                self.tracer.counter("engine", f"engine.{metric}", value)
            self.tracer.finish()

        if self.dropped_ops:
            # REPRO_DEBUG_OPS=1: a dropped op with no later op to report
            # it from (e.g. the kernel's last statement) surfaces here.
            drop = self.dropped_ops[0]
            raise DeviceError(
                f"device op ctx.{drop['op']}() was called without 'yield from' "
                f"by WG{drop['wg']} wf{drop['wf']} and never executed "
                f"(REPRO_DEBUG_OPS=1; {len(self.dropped_ops)} dropped op(s))"
            )

        diagnosis: Optional[Dict[str, Any]] = None
        if deadlocked:
            stalls = build_stall_report(self)
            kind = classify_stagnation(reason != "livelock")
            diagnosis = {
                "kind": kind,
                "reason": reason,
                "cycle": env.now,
                "policy": self.policy.name,
                "finished": self._finished,
                "total": len(self.wgs),
                "stalls": stalls,
            }
            if raise_on_deadlock:
                raise DeadlockError(
                    f"{self.policy.name}: {reason} at cycle {env.now} "
                    f"({self._finished}/{len(self.wgs)} WGs finished); "
                    f"{summarize_stalls(stalls)}",
                    cycle=env.now,
                    reason=reason,
                    kind=kind,
                    policy=self.policy.name,
                    finished=self._finished,
                    total=len(self.wgs),
                    stall_report=stalls,
                )
        return self._outcome(not deadlocked and not outstanding(),
                             deadlocked, reason, diagnosis)

    def _outcome(
        self,
        completed: bool,
        deadlocked: bool,
        reason: str,
        diagnosis: Optional[Dict[str, Any]] = None,
    ) -> RunOutcome:
        running = 0
        waiting = 0
        switches = 0
        for wg in self.wgs:
            wg.set_state(wg.state)  # flush accounting to 'now'
            running += wg.cycles_by_bucket["running"]
            waiting += wg.cycles_by_bucket["waiting"]
            switches += wg.context_switches
        snap = self.stats.snapshot()
        snap.update(self.syncmon.snapshot())
        snap["hierarchy.atomics"] = float(self.hierarchy.atomic_count)
        snap["hierarchy.loads"] = float(self.hierarchy.load_count)
        snap["hierarchy.stores"] = float(self.hierarchy.store_count)
        snap["l2.hit_rate"] = self.hierarchy.l2.stats.hit_rate
        snap["log.appends"] = float(self.monitor_log.total_appends)
        snap["log.peak"] = float(self.monitor_log.peak_occupancy)
        snap["cp.spilled_resumes"] = float(self.cp.spilled_resumes)
        return RunOutcome(
            completed=completed,
            deadlocked=deadlocked,
            cycles=self.env.now,
            reason=reason,
            stats=snap,
            wg_running_cycles=running,
            wg_waiting_cycles=waiting,
            context_switches=switches,
            diagnosis=diagnosis,
        )

"""The WG dispatcher (paper §V.B).

Assigns unique WG IDs, packs WGs onto compute units as slots free up,
routes SyncMon resume notifications to stalled or context-switched WGs,
and swaps ready WGs back in through the Command Processor. WGs are
dispatched oldest-first, ready (previously started) WGs before pending
(never started) ones.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, List, Optional

from repro.sim.events import AllOf
from repro.sim.process import Process

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.compute_unit import ComputeUnit
    from repro.gpu.gpu import GPU
    from repro.gpu.workgroup import WorkGroup


class Dispatcher:
    """Routes WGs between the pending/ready queues and the CUs."""

    #: consecutive ready-over-pending placements before the oldest
    #: pending WG is force-dispatched. Ready-before-pending is the right
    #: default (a started WG holds saved context and sync state), but a
    #: sustained notify storm — e.g. MonRS-All waiters sporadically
    #: re-waking each other on one contended address — can cycle ready
    #: WGs through the slots forever while a never-started WG starves,
    #: silently breaking the IFP guarantee the policy claims. Aging
    #: bounds that: pending WGs wait at most this many placements.
    STARVATION_LIMIT = 64

    def __init__(self, gpu: "GPU") -> None:
        self.gpu = gpu
        self.pending: Deque["WorkGroup"] = deque()
        self.ready: Deque["WorkGroup"] = deque()
        #: WGs frozen by whole-kernel suspension (kernel scheduler)
        self._frozen: List["WorkGroup"] = []
        self._kick_scheduled = False
        self._pending_passovers = 0
        # statistics
        self.dispatches = 0
        self.swap_ins = 0
        self.notifies_delivered = 0
        self.notifies_dropped = 0
        self.starvation_dispatches = 0

    # ------------------------------------------------------------------
    # queue management
    # ------------------------------------------------------------------
    def add(self, wg: "WorkGroup") -> None:
        self.pending.append(wg)
        self.kick()

    def mark_ready(self, wg: "WorkGroup", cause: str = "") -> None:
        """A switched-out WG can run again (condition met / timer / evicted)."""
        from repro.gpu.workgroup import WGState  # local import (cycle)

        if not self.gpu.policy.provides_ifp:
            # A baseline GPU has no WG-scheduling machinery: a WG context-
            # switched out by the kernel-level scheduler can never be
            # restored (this is why every Figure 15 Baseline/Sleep run
            # deadlocks once resources are lost mid-kernel).
            return
        if wg.state is WGState.SWITCHING_OUT:
            wg.ready_when_saved = True
            return
        if wg.state is not WGState.SWITCHED_OUT:
            return
        wg.set_state(WGState.READY)
        tracer = self.gpu.tracer
        if tracer is not None:
            tracer.instant("dispatch", "ready", track="dispatcher",
                           wg=wg.wg_id, cause=cause)
        self.ready.append(wg)
        self.kick()

    def has_runnable_work(self) -> bool:
        """Is the kernel oversubscribing the GPU right now? True when WGs
        exist that want resources (never-started or ready-to-resume)."""
        return bool(self.pending) or bool(self.ready)

    # ------------------------------------------------------------------
    # the dispatch pass
    # ------------------------------------------------------------------
    def kick(self) -> None:
        if self._kick_scheduled:
            return
        self._kick_scheduled = True
        self.gpu.env.call_at(0, self._pass)

    def _free_cu(self) -> Optional["ComputeUnit"]:
        best = None
        for cu in self.gpu.cus:
            if cu.has_slot() and (best is None or cu.free_slots > best.free_slots):
                best = cu
        return best

    def _select(self) -> Optional["WorkGroup"]:
        """Pick the next WG to place: highest priority wins; ties go to
        ready (previously started) WGs before pending ones, FIFO within a
        queue. Kernel-suspended WGs are frozen aside until resumed.

        Anti-starvation aging: after STARVATION_LIMIT consecutive
        ready-over-pending picks, the oldest dispatchable pending WG is
        placed instead (once), so never-started WGs cannot starve behind
        a self-sustaining resume storm."""
        dispatchable_pending = any(
            not wg.kernel_suspended for wg in self.pending)
        if (dispatchable_pending
                and self._pending_passovers >= self.STARVATION_LIMIT):
            for wg in self.pending:
                if not wg.kernel_suspended:
                    self.pending.remove(wg)
                    self._pending_passovers = 0
                    self.starvation_dispatches += 1
                    tracer = self.gpu.tracer
                    if tracer is not None:
                        tracer.instant(
                            "dispatch", "starvation-override",
                            track="dispatcher", wg=wg.wg_id)
                    return wg
        best = None
        best_key = None
        for rank, queue in ((1, self.ready), (0, self.pending)):
            for pos, wg in enumerate(queue):
                if wg.kernel_suspended:
                    continue
                key = (wg.priority, rank, -pos)
                if best_key is None or key > best_key:
                    best, best_key = (wg, queue), key
        if best is None:
            return None
        wg, queue = best
        queue.remove(wg)
        if queue is self.ready and dispatchable_pending:
            self._pending_passovers += 1
        else:
            self._pending_passovers = 0
        return wg

    def _freeze_suspended(self) -> None:
        for queue in (self.ready, self.pending):
            frozen = [wg for wg in queue if wg.kernel_suspended]
            for wg in frozen:
                queue.remove(wg)
                self._frozen.append(wg)

    def requeue(self, wg: "WorkGroup") -> None:
        """Kernel-level restore (inter-kernel context switching exists in
        current GPUs): put a resumed kernel's WG back in the queues
        regardless of the WG-scheduling policy."""
        from repro.gpu.workgroup import WGState

        if wg in self._frozen:
            self._frozen.remove(wg)
        if wg.state is WGState.SWITCHED_OUT:
            wg.set_state(WGState.READY)
            self.ready.append(wg)
        elif wg.state is WGState.PENDING and wg not in self.pending:
            self.pending.append(wg)
        self.kick()

    def _pass(self) -> None:
        self._kick_scheduled = False
        self._freeze_suspended()
        while True:
            cu = self._free_cu()
            if cu is None:
                return
            wg = self._select()
            if wg is None:
                return
            if wg.started:
                self._swap_in_async(wg, cu)
            else:
                self._start(wg, cu)

    def _start(self, wg: "WorkGroup", cu: "ComputeUnit") -> None:
        from repro.gpu.workgroup import WGState

        cu.allocate(wg)
        wg.cu = cu
        wg.started = True
        tracer = self.gpu.tracer
        if tracer is not None:
            tracer.instant("dispatch", "dispatch", track="dispatcher",
                           wg=wg.wg_id, cu=cu.cu_id)
        wg.set_state(WGState.RUNNING)
        self.dispatches += 1
        procs = [wf.start(cu.pick_simd()) for wf in wg.wavefronts]
        AllOf(self.gpu.env, procs).add_callback(
            lambda _ev, w=wg: self.gpu.wg_done(w)
        )

    def _swap_in_async(self, wg: "WorkGroup", cu: "ComputeUnit") -> None:
        from repro.gpu.workgroup import WGState

        # Claim the slot synchronously so a later dispatch decision in the
        # same pass (or a racing pass) cannot double-book it.
        cu.allocate(wg)
        wg.cu = cu
        tracer = self.gpu.tracer
        if tracer is not None:
            tracer.instant("dispatch", "swap-in", track="dispatcher",
                           wg=wg.wg_id, cu=cu.cu_id)
        wg.set_state(WGState.RESUMING)
        self.swap_ins += 1
        Process(self.gpu.env, self._swap_in(wg, cu), name=f"swapin.wg{wg.wg_id}")

    def _swap_in(self, wg: "WorkGroup", cu: "ComputeUnit"):
        yield from self.gpu.cp.restore_context(wg)
        wg.open_gate()
        ev = wg.resume_event
        if ev is not None:
            ev.try_succeed()

    # ------------------------------------------------------------------
    # resume notifications (SyncMon ❺ / CP ⑨ → dispatcher ❻/⑧)
    # ------------------------------------------------------------------
    def notify_met(self, wg_ids: List[int], cause: str, stagger: int) -> None:
        """Resume waiting WGs; staggered delivery avoids retry contention
        (used by the MinResume oracle)."""
        base = self.gpu.config.resume_latency
        for i, wg_id in enumerate(wg_ids):
            wg = self.gpu.wgs[wg_id]
            self.gpu.env.call_at(
                base + i * stagger, lambda w=wg, c=cause: self._deliver(w, c)
            )

    def _deliver(self, wg: "WorkGroup", cause: str) -> None:
        from repro.gpu.workgroup import WGState

        tracer = self.gpu.tracer
        if tracer is not None:
            # one "notify" per delivery attempt; a "drop" follows when the
            # target was already on its way (delivered = notify - drop)
            tracer.instant("dispatch", "notify", track="dispatcher",
                           wg=wg.wg_id, cause=cause, state=wg.state.value)
        if wg.state is WGState.STALLED:
            ev = wg.resume_event
            if ev is not None and ev.try_succeed():
                self.notifies_delivered += 1
                return
        elif wg.state is WGState.SWITCHED_OUT:
            self.notifies_delivered += 1
            self.mark_ready(wg, cause=cause)
            return
        elif wg.state is WGState.SWITCHING_OUT:
            wg.ready_when_saved = True
            self.notifies_delivered += 1
            return
        elif wg.state is WGState.RUNNING:
            # The notification raced the waiting atomic's response back to
            # the CU: the SyncMon already popped the waiter, but the WG is
            # about to enter its waiting state. Leave a sticky notification
            # so wait_on_condition returns immediately (hardware analog:
            # the resume message arrives with/after the atomic response and
            # the desired waiting state is never entered).
            wg.pending_notify = True
            self.notifies_delivered += 1
            return
        # READY / RESUMING / DONE: the WG is already on its way
        # (Mesa semantics make dropped hints harmless).
        if tracer is not None:
            tracer.instant("dispatch", "drop", track="dispatcher",
                           wg=wg.wg_id, cause=cause, state=wg.state.value)
        self.notifies_dropped += 1

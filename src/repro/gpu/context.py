"""WG context save/restore cost model (paper §IV.A, Figure 5).

GPU WG contexts are large (2-10 KB for the evaluated benchmarks): up to
1024 work-items with private vector registers, per-wavefront scalar
registers, and the WG's LDS allocation. A context switch streams the
context to/from global memory at DRAM bandwidth plus a fixed drain /
scheduling overhead, so avoiding context switches is the first design
goal of cooperative scheduling.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.config import GPUConfig
    from repro.gpu.kernel import Kernel


def context_bytes(kernel: "Kernel") -> int:
    """Architectural context footprint of one WG of ``kernel``."""
    return kernel.context_bytes()


def switch_cycles(config: "GPUConfig", nbytes: int) -> int:
    """Fixed (non-bandwidth) cycles charged per context switch direction.

    The bandwidth-dependent part is charged separately through
    :meth:`repro.mem.hierarchy.MemoryHierarchy.bulk_transfer`, so it
    contends with other DRAM traffic.
    """
    del nbytes  # bandwidth handled by bulk_transfer
    return config.context_switch_overhead


class ContextArena:
    """Tracks CP-allocated memory for saved WG contexts (paper Fig 13 text:
    0.74-3.11 MB across benchmarks on their machine)."""

    def __init__(self) -> None:
        self._saved: dict = {}
        self.peak_bytes = 0
        self.total_saves = 0
        self.total_restores = 0

    def save(self, wg_id: int, nbytes: int) -> None:
        self._saved[wg_id] = nbytes
        self.total_saves += 1
        self.peak_bytes = max(self.peak_bytes, self.current_bytes)

    def restore(self, wg_id: int) -> None:
        self._saved.pop(wg_id, None)
        self.total_restores += 1

    @property
    def current_bytes(self) -> int:
        return sum(self._saved.values())

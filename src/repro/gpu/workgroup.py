"""Work-group state machine and the cooperative waiting protocol.

A WG moves through the states the paper's CP firmware tracks (§V.A):
``PENDING`` (never dispatched) → ``RUNNING`` → ``STALLED`` (waiting,
holding CU resources) → ``SWITCHING_OUT`` → ``SWITCHED_OUT`` (waiting,
no resources) → ``READY`` → ``RESUMING`` → ``RUNNING`` → ``DONE``.

:meth:`WorkGroup.wait_on_condition` implements the per-policy waiting
protocol of Figure 6, executed by the master wavefront after a failed
waiting atomic / armed wait instruction:

- Timeout: stall (or context switch when oversubscribed) for the fixed
  interval, then retry.
- Monitor policies (MonRS/MonR/MonNR/MinResume): context switch
  immediately when oversubscribed, otherwise stall; resume on SyncMon
  notification, on MonNR-One's straggler timer, or on the backstop.
- AWG: stall for a *predicted* period first; context switch only if the
  period expires while the kernel oversubscribes the GPU.

All resumptions honour Mesa semantics: the caller re-executes its atomic
and may wait again.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Dict, Optional

from repro.core.conditions import WaitCondition
from repro.core.policies import NotifyMode
from repro.core.syncmon import RegisterOutcome
from repro.sim.events import AnyOf, Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.compute_unit import ComputeUnit
    from repro.gpu.gpu import GPU
    from repro.gpu.kernel import Kernel


class WGState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    STALLED = "stalled"
    SWITCHING_OUT = "switching_out"
    SWITCHED_OUT = "switched_out"
    READY = "ready"
    RESUMING = "resuming"
    DONE = "done"


#: states in which the WG is waiting on synchronization (Fig 11 breakdown)
_WAITING_STATES = frozenset(
    {WGState.STALLED, WGState.SWITCHING_OUT, WGState.SWITCHED_OUT,
     WGState.READY, WGState.RESUMING}
)
#: states in which the WG holds CU residency (RESUMING has its slot
#: allocated while its context streams back in)
RESIDENT_STATES = frozenset(
    {WGState.RUNNING, WGState.STALLED, WGState.SWITCHING_OUT, WGState.RESUMING}
)

#: flat accounting bucket per state: 0 = running, 1 = waiting, 2 = pending
#: (Fig 11 breakdown); precomputed so the per-transition accounting in
#: set_state is one list index instead of a classification call
_BUCKET_INDEX = {
    state: (2 if state is WGState.PENDING
            else 1 if state in _WAITING_STATES
            else 0)
    for state in WGState
}


class WorkGroup:
    """One work-group of a kernel launch."""

    def __init__(self, gpu: "GPU", kernel: "Kernel", wg_id: int,
                 grid_index: int = 0) -> None:
        self.gpu = gpu
        self.kernel = kernel
        #: globally unique dispatcher-assigned ID (§V.B)
        self.wg_id = wg_id
        #: position within this kernel's grid (0 .. grid_wgs-1)
        self.grid_index = grid_index
        self.state = WGState.PENDING
        self.cu: Optional["ComputeUnit"] = None
        self.started = False  # has it ever been dispatched?
        self.wavefronts: list = []
        self.done_event = Event(gpu.env)

        # waiting machinery
        self.cond: Optional[WaitCondition] = None
        self.resume_event: Optional[Event] = None
        self.evict_event: Optional[Event] = None
        self.evict_requested = False
        #: closed gate parks worker wavefronts while the WG is not resident
        self.gate: Optional[Event] = None
        self.ready_when_saved = False
        #: sticky notification: a resume raced our transition into the
        #: waiting state (consumed at the next wait_on_condition entry)
        self.pending_notify = False
        #: condition whose last wait episode ended by timer, not notify —
        #: a repeat wait on it means the stall prediction already failed
        self._timer_expired_cond: Optional[WaitCondition] = None
        #: kernel-scheduler priority (see gpu.kernel_scheduler)
        self.priority = 0
        #: whole-kernel suspension: frozen until the scheduler resumes it
        self.kernel_suspended = False

        # local data share (functional model)
        self.lds: Dict[int, int] = {}
        self._syncthreads_arrived = 0
        self._syncthreads_release: Optional[Event] = None

        # accounting (Fig 11: running vs waiting breakdown)
        self._state_since = gpu.env.now
        self._bucket_cycles = [0, 0, 0]  # running, waiting, pending
        self._bucket_idx = _BUCKET_INDEX[self.state]
        self.context_switches = 0
        self.wait_episodes = 0
        self.spurious_wakeups = 0

    # ------------------------------------------------------------------
    # state accounting
    # ------------------------------------------------------------------
    @property
    def cycles_by_bucket(self) -> Dict[str, int]:
        """Fig 11 breakdown. A view over the flat per-bucket tallies —
        the hot per-transition accounting lives in :meth:`set_state`."""
        cycles = self._bucket_cycles
        return {"running": cycles[0], "waiting": cycles[1],
                "pending": cycles[2]}

    def set_state(self, new: WGState) -> None:
        now = self.gpu.env.now
        self._bucket_cycles[self._bucket_idx] += now - self._state_since
        self._state_since = now
        if new is not self.state:
            tracer = self.gpu.tracer
            if tracer is not None:
                tracer.set_span("wg", f"wg/{self.wg_id}", new.value)
        self.state = new
        self._bucket_idx = _BUCKET_INDEX[new]

    @property
    def resident(self) -> bool:
        return self.state in RESIDENT_STATES

    def context_bytes(self) -> int:
        return self.kernel.context_bytes()

    # ------------------------------------------------------------------
    # gate (parks worker wavefronts when the WG is not resident)
    # ------------------------------------------------------------------
    def close_gate(self) -> None:
        if self.gate is None:
            self.gate = Event(self.gpu.env)

    def open_gate(self) -> None:
        if self.gate is not None:
            gate, self.gate = self.gate, None
            gate.try_succeed()

    # ------------------------------------------------------------------
    # local barrier (__syncthreads) among the WG's wavefronts
    # ------------------------------------------------------------------
    def syncthreads_arrive(self) -> Event:
        """Returns the event that releases this arrival's wavefront."""
        env = self.gpu.env
        if self._syncthreads_release is None:
            self._syncthreads_release = Event(env)
        release = self._syncthreads_release
        self._syncthreads_arrived += 1
        if self._syncthreads_arrived >= max(1, len(self.wavefronts)):
            self._syncthreads_arrived = 0
            self._syncthreads_release = None
            release.succeed(delay=self.gpu.config.issue_cycles)
        return release

    # ------------------------------------------------------------------
    # eviction (kernel-scheduler preemption / dynamic resource loss)
    # ------------------------------------------------------------------
    def request_evict(self) -> None:
        """Forcibly take this WG's resources (called by the preemption
        machinery). RUNNING WGs notice at their next device op; waiting
        WGs are woken through their evict branch."""
        if not self.resident:
            return
        self.evict_requested = True
        if self.evict_event is not None:
            self.evict_event.try_succeed()

    # ------------------------------------------------------------------
    # context switching
    # ------------------------------------------------------------------
    def switch_out(self):
        """Generator: save context, release the CU slot (master-side)."""
        gpu = self.gpu
        self.set_state(WGState.SWITCHING_OUT)
        self.close_gate()
        self.context_switches += 1
        yield from gpu.cp.save_context(self)
        cu, self.cu = self.cu, None
        if cu is not None:
            cu.release(self)
            cu.wgs_evicted += 1
        self.set_state(WGState.SWITCHED_OUT)
        gpu.dispatcher.kick()
        if self.ready_when_saved:
            self.ready_when_saved = False
            gpu.dispatcher.mark_ready(self, cause="met-while-switching")

    def evict_and_park(self, is_runnable: bool = True):
        """Generator: forced eviction of a RUNNING WG at an op boundary.

        The WG is runnable (it was not waiting on a condition) so it goes
        straight onto the ready queue and parks until re-dispatched."""
        self.evict_requested = False
        self.resume_event = Event(self.gpu.env)
        yield from self.switch_out()
        if is_runnable and not self.kernel_suspended:
            self.gpu.dispatcher.mark_ready(self, cause="evicted")
        yield self.resume_event
        self.set_state(WGState.RUNNING)

    # ------------------------------------------------------------------
    # the waiting protocol (Figure 6)
    # ------------------------------------------------------------------
    def wait_on_condition(
        self,
        cond: WaitCondition,
        outcome: Optional[RegisterOutcome],
    ):
        """Generator: park this WG until it should retry its atomic.

        ``outcome`` is the SyncMon registration outcome (None for
        policies with no monitor, e.g. Timeout)."""
        gpu = self.gpu
        env = gpu.env
        policy = gpu.policy
        cfg = gpu.config
        tracer = gpu.tracer

        if outcome is RegisterOutcome.LOG_FULL:
            # Nowhere to store the condition: Mesa busy retry (§V.A).
            if tracer is not None:
                tracer.instant("wg", "wait:log-full",
                               track=f"wg/{self.wg_id}", addr=cond.addr)
            yield env.timeout(cfg.log_full_retry)
            return

        if self.pending_notify:
            # Our condition was met while the failing atomic's response
            # was still in flight; never enter the waiting state.
            self.pending_notify = False
            self.spurious_wakeups += 1
            if tracer is not None:
                tracer.instant("wg", "wait:pending-notify",
                               track=f"wg/{self.wg_id}", addr=cond.addr)
            yield env.timeout(cfg.resume_latency)
            return

        registered = outcome in (RegisterOutcome.REGISTERED, RegisterOutcome.SPILLED)
        self.wait_episodes += 1
        self.cond = cond
        self.resume_event = Event(env)
        self.evict_event = Event(env)
        if self.evict_requested:
            self.evict_event.try_succeed()
        started = env.now
        oversub = gpu.dispatcher.has_runnable_work()

        # -- plan deadlines (absolute cycles); None = never ---------------
        # retry_source names which timer the retry deadline came from
        # ("interval" / "straggler" / "backstop") — surfaced as
        # wait.retry.* stats and trace instants when the timer fires, so
        # the differential suite can tell a scheduled wake-up from a
        # window-of-vulnerability recovery.
        switch_deadline: Optional[int] = None
        retry_deadline: Optional[int] = None
        retry_source = "interval"
        if policy.notify is NotifyMode.NONE:
            # Timeout policy: no monitor; pure timer.
            if oversub and policy.provides_ifp:
                switch_deadline = started  # switch immediately
                retry_deadline = started + (policy.timeout_interval or cfg.timeout_interval)
            else:
                retry_deadline = started + (policy.timeout_interval or cfg.timeout_interval)
        elif policy.predict_stall:
            # AWG: stall a predicted period before considering a switch;
            # retry on the straggler timeout (misprediction recovery) or
            # the backstop, whichever is sooner. A repeat wait on a
            # condition whose previous episode already timed out means the
            # stall prediction failed — don't re-predict, consider
            # switching right away (Mesa retries must not reset the
            # stall clock, or stalled WGs starve ready ones forever).
            if self._timer_expired_cond == cond:
                switch_deadline = started
            else:
                predicted = gpu.syncmon.stall_predictor.predict()
                switch_deadline = started + predicted
                if tracer is not None:
                    tracer.instant("predict", "stall",
                                   track=f"wg/{self.wg_id}",
                                   cycles=predicted, addr=cond.addr)
            deadlines = [
                (d, src) for d, src in
                ((policy.timeout_interval, "straggler"),
                 (policy.backstop_timeout, "backstop"))
                if d is not None
            ]
            if deadlines:
                soonest, retry_source = min(deadlines)
                retry_deadline = started + soonest
        else:
            # Monitor policies: switch now iff oversubscribed.
            if oversub:
                switch_deadline = started
            deadlines = [
                (d, src) for d, src in
                ((policy.timeout_interval, "straggler"),  # MonNR-One only
                 (policy.backstop_timeout, "backstop"))
                if d is not None
            ]
            if deadlines:
                soonest, retry_source = min(deadlines)
                retry_deadline = started + soonest

        self.set_state(WGState.STALLED)
        gpu.cp.note_waiting(self)
        try:
            while True:
                branches = [self.resume_event, self.evict_event]
                timer: Optional[Event] = None
                deadline_kind = None
                candidates = []
                if switch_deadline is not None and self.resident:
                    candidates.append((switch_deadline, "switch"))
                if retry_deadline is not None:
                    candidates.append((retry_deadline, "retry"))
                if candidates:
                    when, deadline_kind = min(candidates)
                    timer = env.timeout(max(0, when - env.now))
                    branches.append(timer)

                choice = yield AnyOf(env, branches)
                idx, _value = choice

                if idx == 0:  # resumed (notification or dispatcher swap-in)
                    self._timer_expired_cond = None
                    break

                if idx == 1:  # evicted while waiting
                    self.evict_requested = False
                    self.evict_event = Event(env)
                    if self.resident:
                        yield from self.switch_out()
                        retry_deadline, retry_source = (
                            self._switched_retry_deadline(
                                retry_deadline, retry_source
                            )
                        )
                    continue

                # timer fired
                if deadline_kind == "switch":
                    switch_deadline = None
                    if policy.predict_stall and not gpu.dispatcher.has_runnable_work():
                        # AWG: not oversubscribed — keep stalling for notify.
                        continue
                    yield from self.switch_out()
                    retry_deadline, retry_source = (
                        self._switched_retry_deadline(
                            retry_deadline, retry_source
                        )
                    )
                    continue

                # retry deadline: give up waiting, re-check the condition.
                self._timer_expired_cond = cond
                gpu.stats.counter(f"wait.retry.{retry_source}").incr()
                if tracer is not None:
                    tracer.instant("wg", f"retry:{retry_source}",
                                   track=f"wg/{self.wg_id}", addr=cond.addr,
                                   waited=env.now - started)
                if registered and policy.uses_monitor:
                    gpu.syncmon.withdraw(self.wg_id, cond)
                if not self.resident:
                    if self.state is WGState.SWITCHED_OUT:
                        gpu.dispatcher.mark_ready(self, cause="timer")
                    # Park until the dispatcher swaps us back in.
                    yield self.resume_event
                break
        finally:
            gpu.cp.note_not_waiting(self)
            self.cond = None
            self.evict_event = None

        if not self.resident:
            # Resumed while switched out: the dispatcher should have swapped
            # us in before firing resume; defensive wait otherwise.
            self.resume_event = Event(env)
            if self.state is not WGState.RUNNING:
                gpu.dispatcher.mark_ready(self, cause="late-resume")
                yield self.resume_event
        self.set_state(WGState.RUNNING)
        gpu.stats.running_mean("wg.wait_episode_cycles").add(env.now - started)

    def _switched_retry_deadline(self, retry_deadline, retry_source: str):
        """Recompute the (retry deadline, deadline source) after a
        context switch.

        The straggler timeout only applies to *stalled* (resident) WGs —
        re-swapping a switched-out WG on a short timer would thrash the
        context-switch path. Monitor policies fall back to the long
        backstop once out; the Timeout policy keeps its fixed interval
        (sleeping switched-out for the interval *is* its semantics)."""
        policy = self.gpu.policy
        cfg = self.gpu.config
        if policy.notify is NotifyMode.NONE:
            return retry_deadline, retry_source
        deadline = self.gpu.env.now + (
            policy.backstop_timeout or cfg.backstop_timeout
        )
        return deadline, "backstop"

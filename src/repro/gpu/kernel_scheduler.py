"""Priority-based kernel scheduling with whole-kernel preemption (§II.C).

Current GPUs provide *inter-kernel* IFP by context switching all the
resident WGs of a lower-priority kernel when a higher-priority kernel
arrives (asynchronous compute / HSA queue priorities). The paper's
motivating Figure 2 scenario falls out of this mechanism naturally: when
the preempted kernel is *rescheduled*, the scheduler "may not provide
the same execution resources as before, resulting in over-subscription"
— and a busy-waiting kernel deadlocks on its own synchronization, while
AWG's cooperative WG scheduling keeps it live on whatever is left.

:class:`PriorityKernelScheduler` models exactly that contract:

- ``launch(kernel, priority)`` — if the grid does not fit, whole
  lower-priority kernels are suspended (all their WGs context switched
  out and *held*, not re-queued) until enough slots free up;
- when any kernel completes, the highest-priority suspended kernel is
  resumed: its WGs are re-queued and dispatched as capacity allows —
  possibly fewer slots than WGs, i.e. oversubscribed.

Re-queuing on resume uses the *kernel-level* restore path that exists in
current GPUs (it bypasses the policy's WG-scheduling machinery), so the
scenario is meaningful even for the busy-waiting Baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.gpu.kernel import Kernel, KernelLaunch
from repro.gpu.workgroup import WGState
from repro.sim.events import AllOf

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.gpu import GPU
    from repro.gpu.workgroup import WorkGroup


@dataclass
class ScheduledKernel:
    """Book-keeping for one prioritized kernel."""

    launch: KernelLaunch
    priority: int
    suspended: bool = False
    suspend_count: int = 0
    completed: bool = False
    completed_at: Optional[int] = None

    @property
    def name(self) -> str:
        return self.launch.kernel.name


class PriorityKernelScheduler:
    """Whole-kernel preemptive scheduling on top of one GPU."""

    def __init__(self, gpu: "GPU") -> None:
        self.gpu = gpu
        self.kernels: List[ScheduledKernel] = []

    # ------------------------------------------------------------------
    def launch(self, kernel: Kernel, priority: int = 0) -> ScheduledKernel:
        """Launch with a priority; preempts lower-priority kernels if the
        grid does not fit in the currently free slots."""
        shortfall = kernel.grid_wgs - self._free_slots()
        if shortfall > 0:
            self._make_room(shortfall, priority)
        launch = self.gpu.launch(kernel)
        entry = ScheduledKernel(launch=launch, priority=priority)
        for wg_id in launch.wg_ids:
            self.gpu.wgs[wg_id].priority = priority
        self.kernels.append(entry)
        done_events = [self.gpu.wgs[i].done_event for i in launch.wg_ids]
        AllOf(self.gpu.env, done_events).add_callback(
            lambda _ev, e=entry: self._kernel_done(e)
        )
        return entry

    def _free_slots(self) -> int:
        return sum(cu.free_slots for cu in self.gpu.cus)

    # ------------------------------------------------------------------
    # preemption
    # ------------------------------------------------------------------
    def _make_room(self, needed: int, priority: int) -> None:
        """Suspend whole lower-priority kernels, lowest priority first."""
        victims = sorted(
            (k for k in self.kernels
             if not k.suspended and not k.completed and k.priority < priority),
            key=lambda k: k.priority,
        )
        freed = 0
        for victim in victims:
            if freed >= needed:
                break
            freed += self._suspend(victim)

    def _suspend(self, entry: ScheduledKernel) -> int:
        """Context switch out every resident WG of ``entry``'s kernel."""
        entry.suspended = True
        entry.suspend_count += 1
        evicted = 0
        for wg_id in entry.launch.wg_ids:
            wg = self.gpu.wgs[wg_id]
            if wg.state is WGState.DONE:
                continue
            wg.kernel_suspended = True
            if wg.resident:
                wg.request_evict()
                evicted += 1
        # WGs still waiting in the pending/ready queues are simply frozen
        # by the kernel_suspended flag (the dispatcher skips them).
        self.gpu.stats.counter("ksched.suspensions").incr()
        return evicted

    def _resume(self, entry: ScheduledKernel) -> None:
        """Re-queue the kernel's WGs (kernel-level restore path)."""
        entry.suspended = False
        for wg_id in entry.launch.wg_ids:
            wg = self.gpu.wgs[wg_id]
            wg.kernel_suspended = False
            if wg.state is WGState.SWITCHED_OUT:
                self.gpu.dispatcher.requeue(wg)
        self.gpu.dispatcher.kick()
        self.gpu.stats.counter("ksched.resumptions").incr()

    # ------------------------------------------------------------------
    def _kernel_done(self, entry: ScheduledKernel) -> None:
        entry.completed = True
        entry.completed_at = self.gpu.env.now
        self.gpu.note_progress("kernel_complete")
        waiting = [k for k in self.kernels if k.suspended and not k.completed]
        if waiting:
            best = max(waiting, key=lambda k: k.priority)
            self._resume(best)

    # ------------------------------------------------------------------
    def status(self) -> Dict[str, str]:
        return {
            k.name: ("done" if k.completed
                     else "suspended" if k.suspended else "running")
            for k in self.kernels
        }

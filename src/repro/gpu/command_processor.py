"""Command Processor firmware extensions (paper §V.A-B, Figure 13).

The CP is only involved in the slow path: it performs WG context
save/restore, periodically drains the Monitor Log into a lookup-efficient
in-memory table, polls the spilled waiting conditions, and tracks the
status of every waiting WG. It is deliberately off the critical path —
in the common (non-oversubscribed, SyncMon-resident) case it does no
work at all.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Set, Tuple

from repro.gpu.context import ContextArena, switch_cycles
from repro.sim.resources import FifoResource

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.gpu import GPU
    from repro.gpu.workgroup import WorkGroup

#: bytes per CP table entry, for the Figure 13 size accounting
CONDITION_ENTRY_BYTES = 12  # address (8) + waiting value (4)
MONITORED_ADDR_BYTES = 8
WAITING_WG_BYTES = 16  # id + status + saved-context pointer
MONITOR_TABLE_BYTES = 16  # mirrors Monitor Log entries


class CommandProcessor:
    """Firmware model: context switching + spilled-condition checking."""

    def __init__(self, gpu: "GPU") -> None:
        self.gpu = gpu
        self.resource = FifoResource(gpu.env, "cp")
        self.arena = ContextArena()
        #: spilled conditions: (addr, expected) -> waiting WG ids
        self.spilled: Dict[Tuple[int, int], Set[int]] = {}
        self._waiting_wgs: Set[int] = set()
        # Figure 13 peak trackers
        self.peak_spilled_conditions = 0
        self.peak_waiting_wgs = 0
        self.peak_monitored_addrs = 0
        # counters
        self.log_parses = 0
        self.spilled_checks = 0
        self.spilled_resumes = 0
        self._tick_scheduled = False
        self._schedule_tick()

    # ------------------------------------------------------------------
    # context switching (❼/⑧ in Figure 12)
    # ------------------------------------------------------------------
    def save_context(self, wg: "WorkGroup"):
        """Generator: stream the WG context out to global memory."""
        cfg = self.gpu.config
        nbytes = wg.context_bytes()
        yield self.resource.service(switch_cycles(cfg, nbytes))
        yield self.gpu.hierarchy.bulk_transfer(nbytes)
        self.arena.save(wg.wg_id, nbytes)
        self.gpu.stats.counter("cp.context_saves").incr()
        tracer = self.gpu.tracer
        if tracer is not None:
            tracer.instant("cp", "ctx-save", track="cp",
                           wg=wg.wg_id, bytes=nbytes)

    def restore_context(self, wg: "WorkGroup"):
        """Generator: stream the WG context back in."""
        cfg = self.gpu.config
        nbytes = wg.context_bytes()
        yield self.resource.service(switch_cycles(cfg, nbytes))
        yield self.gpu.hierarchy.bulk_transfer(nbytes)
        self.arena.restore(wg.wg_id)
        self.gpu.stats.counter("cp.context_restores").incr()
        tracer = self.gpu.tracer
        if tracer is not None:
            tracer.instant("cp", "ctx-restore", track="cp",
                           wg=wg.wg_id, bytes=nbytes)

    # ------------------------------------------------------------------
    # waiting-WG tracking (Figure 13 accounting)
    # ------------------------------------------------------------------
    def note_waiting(self, wg: "WorkGroup") -> None:
        self._waiting_wgs.add(wg.wg_id)
        self.peak_waiting_wgs = max(self.peak_waiting_wgs, len(self._waiting_wgs))
        # distinct monitored addrs = cached per-addr counts in the SyncMon
        # plus spilled-only addrs; the old full condition-cache scan per
        # waiting transition was a profiling hot spot
        counts = self.gpu.syncmon._addr_counts
        n_addrs = len(counts)
        if self.spilled:
            n_addrs += len(
                {addr for (addr, _v) in self.spilled if addr not in counts}
            )
        self.peak_monitored_addrs = max(self.peak_monitored_addrs, n_addrs)
        tracer = self.gpu.tracer
        if tracer is not None:
            tracer.counter("cp", "cp.waiting_wgs", len(self._waiting_wgs))
            tracer.counter("cp", "cp.monitored_addrs", n_addrs)

    def note_not_waiting(self, wg: "WorkGroup") -> None:
        self._waiting_wgs.discard(wg.wg_id)

    # ------------------------------------------------------------------
    # the periodic firmware tick (⑨)
    # ------------------------------------------------------------------
    def _schedule_tick(self) -> None:
        self.gpu.env.call_at(self.gpu.config.cp_check_interval, self._tick)

    def _tick(self) -> None:
        log = self.gpu.monitor_log
        tracer = self.gpu.tracer
        if log.occupancy:
            self.log_parses += 1
            drained = 0
            for entry in log.drain():
                key = (entry.addr, entry.value)
                self.spilled.setdefault(key, set()).add(entry.wg_id)
                drained += 1
            self.peak_spilled_conditions = max(
                self.peak_spilled_conditions, len(self.spilled)
            )
            if tracer is not None:
                tracer.instant("cp", "log-parse", track="cp",
                               entries=drained)
                tracer.counter("cp", "cp.spilled_conditions",
                               len(self.spilled))
        if self.spilled:
            self.resource.service(self.gpu.config.cp_check_cost)
            self._check_spilled()
        self._schedule_tick()

    def _check_spilled(self) -> None:
        """Poll the current memory value of each spilled condition."""
        store = self.gpu.store
        met = []
        for (addr, expected), wg_ids in self.spilled.items():
            self.spilled_checks += 1
            if store.read(addr) == expected:
                met.append((addr, expected, wg_ids))
        tracer = self.gpu.tracer
        for addr, expected, wg_ids in met:
            del self.spilled[(addr, expected)]
            self.spilled_resumes += len(wg_ids)
            if tracer is not None:
                tracer.instant("cp", "spilled-resume", track="cp",
                               addr=addr, wgs=sorted(wg_ids))
            self.gpu.dispatcher.notify_met(
                sorted(wg_ids), cause="cp-spilled", stagger=0
            )

    # ------------------------------------------------------------------
    # Figure 13: CP scheduling data-structure sizes
    # ------------------------------------------------------------------
    def datastructure_bytes(self) -> Dict[str, int]:
        syncmon = self.gpu.syncmon
        conditions = syncmon.peak_conditions + self.peak_spilled_conditions
        return {
            "waiting_conditions": conditions * CONDITION_ENTRY_BYTES,
            "monitored_addresses": self.peak_monitored_addrs * MONITORED_ADDR_BYTES,
            "waiting_wgs": self.peak_waiting_wgs * WAITING_WG_BYTES,
            "monitor_table": self.gpu.monitor_log.peak_occupancy * MONITOR_TABLE_BYTES,
        }

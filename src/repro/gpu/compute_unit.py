"""Compute Units: SIMD issue ports plus WG residency slots."""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Set

from repro.errors import SimulationError
from repro.sim.resources import FifoResource

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.config import GPUConfig
    from repro.gpu.workgroup import WorkGroup
    from repro.sim.engine import Engine


class ComputeUnit:
    """One CU: ``simds_per_cu`` issue ports and ``max_wgs_per_cu`` WG slots.

    Device operations occupy a SIMD issue port for a few cycles, so
    co-resident wavefronts interfere realistically; WG residency is the
    resource that oversubscription exhausts.
    """

    def __init__(self, env: "Engine", config: "GPUConfig", cu_id: int) -> None:
        self.env = env
        self.config = config
        self.cu_id = cu_id
        self.enabled = True
        self.capacity = config.max_wgs_per_cu
        self.resident: Set["WorkGroup"] = set()
        self.simds: List[FifoResource] = [
            FifoResource(env, f"cu{cu_id}.simd{i}")
            for i in range(config.simds_per_cu)
        ]
        self._next_simd = 0
        # statistics
        self.wgs_dispatched = 0
        self.wgs_evicted = 0

    @property
    def free_slots(self) -> int:
        if not self.enabled:
            return 0
        return self.capacity - len(self.resident)

    def has_slot(self) -> bool:
        return self.free_slots > 0

    def allocate(self, wg: "WorkGroup") -> None:
        if not self.has_slot():
            raise SimulationError(f"CU{self.cu_id} has no free WG slot")
        self.resident.add(wg)
        self.wgs_dispatched += 1

    def release(self, wg: "WorkGroup") -> None:
        if wg not in self.resident:
            raise SimulationError(
                f"CU{self.cu_id}: releasing WG{wg.wg_id} that is not resident"
            )
        self.resident.remove(wg)

    def pick_simd(self) -> FifoResource:
        """Round-robin SIMD assignment for a newly placed wavefront."""
        simd = self.simds[self._next_simd % len(self.simds)]
        self._next_simd += 1
        return simd

    def disable(self) -> None:
        """Take the CU away (kernel-scheduler preemption, §VI)."""
        self.enabled = False

    def enable(self) -> None:
        self.enabled = True

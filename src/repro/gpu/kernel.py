"""Kernel and launch abstractions.

A kernel body is a Python generator function taking a
:class:`~repro.gpu.device_api.WavefrontCtx`; the generator yields device
operations (via ``yield from ctx.<op>(...)``). The *master* wavefront of
each WG runs ``body``; additional wavefronts run ``worker_body`` when
provided (they typically compute and join local barriers, mirroring the
master-thread idiom the paper's Figure 10 kernels use).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, Optional

from repro.errors import ConfigError


@dataclass
class ResourceProfile:
    """Per-kernel register/LDS usage, drives the WG context size (Fig 5)."""

    vgprs_per_wi: int = 16
    sgprs_per_wavefront: int = 64
    lds_bytes: int = 0

    def context_bytes(self, wis_per_wg: int, wavefronts_per_wg: int) -> int:
        """Architectural WG context: vector + scalar registers + LDS."""
        vec = self.vgprs_per_wi * 4 * wis_per_wg
        sca = self.sgprs_per_wavefront * 4 * wavefronts_per_wg
        return vec + sca + self.lds_bytes


@dataclass
class Kernel:
    """A GPU kernel: a grid of WGs running a coroutine body."""

    name: str
    body: Callable[..., Generator]
    grid_wgs: int
    wavefronts_per_wg: int = 1
    wis_per_wavefront: int = 64
    worker_body: Optional[Callable[..., Generator]] = None
    resources: ResourceProfile = field(default_factory=ResourceProfile)
    args: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.grid_wgs < 1:
            raise ConfigError(f"kernel {self.name}: grid_wgs must be >= 1")
        if self.wavefronts_per_wg < 1:
            raise ConfigError(f"kernel {self.name}: wavefronts_per_wg must be >= 1")

    @property
    def wis_per_wg(self) -> int:
        return self.wavefronts_per_wg * self.wis_per_wavefront

    def context_bytes(self) -> int:
        return self.resources.context_bytes(self.wis_per_wg, self.wavefronts_per_wg)


@dataclass
class KernelLaunch:
    """Handle returned by :meth:`repro.gpu.gpu.GPU.launch`."""

    kernel: Kernel
    wg_ids: list
    launched_at: int

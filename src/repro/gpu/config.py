"""GPU machine configuration (the paper's Table 1 baseline model).

All timing is in core clock cycles at ``clock_ghz``. The Table 1 machine:
8 CUs, each with 2 SIMD units of width 64 and 20 wavefront slots per SIMD;
32 KB 16-way L1 per CU (30 cycles); 512 KB 16-way shared L2 (50 cycles);
one 32 KB 8-way instruction cache and one 16 KB 8-way scalar cache per
4 CUs (4 cycles); DDR3 DRAM with 4 channels at 1 GHz.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Optional

from repro.errors import ConfigError
from repro.faults.plan import FaultPlan
from repro.trace.config import TraceConfig


@dataclass
class GPUConfig:
    """Machine + mechanism parameters for one simulation."""

    # -- Table 1: compute ------------------------------------------------
    clock_ghz: float = 2.0
    num_cus: int = 8
    simds_per_cu: int = 2
    simd_width: int = 64
    wavefronts_per_simd: int = 20

    # -- Table 1: memory hierarchy (64 B blocks) -------------------------
    block_bytes: int = 64
    icache_size: int = 32 * 1024
    icache_assoc: int = 8
    icache_latency: int = 4
    scalar_cache_size: int = 16 * 1024
    scalar_cache_assoc: int = 8
    scalar_cache_latency: int = 4
    l1_size: int = 32 * 1024
    l1_assoc: int = 16
    l1_latency: int = 30
    l2_size: int = 512 * 1024
    l2_assoc: int = 16
    l2_latency: int = 50
    dram_channels: int = 4
    dram_latency: int = 160  # core cycles from L2 miss to data
    dram_service: int = 16  # bank/channel occupancy per 64 B block

    # -- derived service times (bank occupancy models contention) --------
    l2_banks: int = 8
    #: an atomic is a read-modify-write at the L2 and holds its bank for
    #: roughly the L2 latency — this is what makes busy-wait spin traffic
    #: serialize behind itself and starve the lock holder (§IV.C)
    l2_atomic_service: int = 48
    l2_load_service: int = 4
    l2_store_service: int = 4
    issue_cycles: int = 4  # SIMD issue occupancy per device op
    #: long compute bursts re-check for preemption every quantum
    #: (instruction-granularity interruptibility)
    compute_quantum: int = 2_000

    # -- WG scheduling ----------------------------------------------------
    #: WGs resident per CU (occupancy); oversubscription means the grid
    #: has more WGs than num_cus * max_wgs_per_cu can hold at once.
    max_wgs_per_cu: int = 8
    #: fixed overhead (drain + scheduling) per context switch direction
    context_switch_overhead: int = 500
    #: notification latency SyncMon -> dispatcher -> CU
    resume_latency: int = 100

    # -- AWG hardware structures (paper §V.C) ------------------------------
    syncmon_sets: int = 256
    syncmon_assoc: int = 4  # 1024 waiting conditions total
    waiting_wg_list_size: int = 512
    bloom_filter_count: int = 512
    bloom_bits: int = 24
    bloom_hashes: int = 6
    monitor_log_entries: int = 1024
    #: CP firmware: period between Monitor Log parses / spilled-condition checks
    cp_check_interval: int = 2_000
    cp_check_cost: int = 200  # CP occupancy per spilled-condition sweep

    # -- policy defaults ----------------------------------------------------
    #: backstop timeout for monitor policies (recovers races/mispredictions)
    backstop_timeout: int = 100_000
    #: fixed interval for the Timeout policy (swept in Fig 8)
    timeout_interval: int = 20_000
    #: software exponential backoff bounds for the Sleep policy (Fig 7)
    sleep_backoff_min: int = 64
    sleep_backoff_max: int = 16_000
    #: retry delay when the Monitor Log is full (Mesa busy retry)
    log_full_retry: int = 200

    # -- run control ----------------------------------------------------------
    max_cycles: int = 50_000_000
    deadlock_window: int = 400_000
    #: consecutive watchdog windows with progress events but no condition
    #: advancement before declaring livelock (0 disables the check)
    livelock_windows: int = 8
    seed: int = 1
    #: record every WG state transition (Figure 6 timeline rendering);
    #: legacy switch, equivalent to ``trace=TraceConfig(categories=("wg",))``
    trace_states: bool = False
    #: structured event tracing (:mod:`repro.trace`): category filters +
    #: bounded ring buffer; None disables tracing entirely (zero cost)
    trace: Optional[TraceConfig] = None
    #: deterministic fault-injection schedule (see :mod:`repro.faults`);
    #: None runs fault-free
    fault_plan: Optional[FaultPlan] = None
    #: attach the dynamic sync sanitizer (:mod:`repro.analysis.sanitizer`)
    #: to the memory hierarchy; adds shadow-state bookkeeping per access
    sanitize: bool = False

    def __post_init__(self) -> None:
        if self.num_cus < 1:
            raise ConfigError("num_cus must be >= 1")
        if self.max_wgs_per_cu < 1:
            raise ConfigError("max_wgs_per_cu must be >= 1")
        if self.l2_banks < 1:
            raise ConfigError("l2_banks must be >= 1")
        if self.syncmon_sets & (self.syncmon_sets - 1):
            raise ConfigError("syncmon_sets must be a power of two")

    # -- derived quantities ---------------------------------------------------
    @property
    def wg_capacity(self) -> int:
        """Total WGs the GPU can hold resident."""
        return self.num_cus * self.max_wgs_per_cu

    @property
    def syncmon_conditions(self) -> int:
        return self.syncmon_sets * self.syncmon_assoc

    def cycles(self, microseconds: float) -> int:
        """Convert wall time to core cycles."""
        return int(microseconds * self.clock_ghz * 1_000)

    def microseconds(self, cycles: int) -> float:
        return cycles / (self.clock_ghz * 1_000)

    def with_overrides(self, **kwargs) -> "GPUConfig":
        """Functional update; used by experiment sweeps."""
        return replace(self, **kwargs)

    # -- canonical serialization (repro bundles) -----------------------
    def spec(self) -> Dict[str, Any]:
        """JSON-serializable dict that fully determines this machine.

        Repro bundles embed the *resolved* config so a failure is
        replayable even if scenario defaults drift later."""
        out: Dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name in ("fault_plan", "trace"):
                continue
            out[f.name] = value
        out["fault_plan"] = (
            self.fault_plan.spec() if self.fault_plan is not None else None)
        out["trace"] = (
            {"categories": list(self.trace.categories),
             "buffer_size": self.trace.buffer_size}
            if self.trace is not None else None)
        return out

    @classmethod
    def from_spec(cls, spec: Dict[str, Any]) -> "GPUConfig":
        """Inverse of :meth:`spec`."""
        kwargs = dict(spec)
        plan = kwargs.get("fault_plan")
        kwargs["fault_plan"] = (
            FaultPlan.from_spec(plan) if plan is not None else None)
        trace = kwargs.get("trace")
        kwargs["trace"] = TraceConfig(**trace) if trace is not None else None
        return cls(**kwargs)

    def describe(self) -> Dict[str, str]:
        """Human-readable Table 1 rendition."""
        return {
            "Compute Units": f"{self.num_cus}",
            "Clock": f"{self.clock_ghz} GHz",
            "SIMD units / CU": f"{self.simds_per_cu}",
            "SIMD width": f"{self.simd_width}",
            "Wavefronts per SIMD": f"{self.wavefronts_per_simd}",
            "Instruction Cache / 4 CUs": (
                f"{self.icache_size // 1024} KB, {self.icache_assoc}-way, "
                f"{self.icache_latency} cycles"
            ),
            "Scalar Cache / 4 CUs": (
                f"{self.scalar_cache_size // 1024} KB, {self.scalar_cache_assoc}-way, "
                f"{self.scalar_cache_latency} cycles"
            ),
            "L1 cache / CU": (
                f"{self.l1_size // 1024} KB, {self.l1_assoc}-way, "
                f"{self.l1_latency} cycles"
            ),
            "L2 cache shared": (
                f"{self.l2_size // 1024} KB, {self.l2_assoc}-way, "
                f"{self.l2_latency} cycles"
            ),
            "DRAM": f"DDR3, {self.dram_channels} Channels, 1 GHz",
            "Block size": f"{self.block_bytes} B",
        }

"""Wavefronts: the coroutine carriers of kernel execution.

The master wavefront (wf 0) runs the kernel ``body``; additional
wavefronts run ``worker_body`` when the kernel provides one. Following
the master-thread idiom of the paper's Figure 10 kernels, only the master
touches synchronization variables; workers compute and join
``syncthreads``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.gpu.device_api import WavefrontCtx
from repro.sim.process import Process

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.gpu import GPU
    from repro.gpu.workgroup import WorkGroup
    from repro.sim.resources import FifoResource


class Wavefront:
    """One wavefront of a WG; wraps a kernel generator in a Process."""

    def __init__(self, gpu: "GPU", wg: "WorkGroup", wf_id: int) -> None:
        self.gpu = gpu
        self.wg = wg
        self.wf_id = wf_id
        self.process: Optional[Process] = None
        self.ctx: Optional[WavefrontCtx] = None

    @property
    def is_master(self) -> bool:
        return self.wf_id == 0

    def start(self, simd: "FifoResource") -> Process:
        """Instantiate the kernel generator and launch it as a process."""
        kernel = self.wg.kernel
        self.ctx = WavefrontCtx(self.gpu, self.wg, self.wf_id, simd)
        if self.is_master:
            gen = kernel.body(self.ctx)
        else:
            assert kernel.worker_body is not None
            gen = kernel.worker_body(self.ctx)
        self.process = Process(
            self.gpu.env, gen, name=f"{kernel.name}.wg{self.wg.wg_id}.wf{self.wf_id}"
        )
        return self.process

"""Structured progress-watchdog diagnostics.

When the watchdog declares a run dead, a prose message ("watchdog at
cycle N") is not enough to debug a scheduling policy or to assert the
DESIGN.md IFP table in a fault campaign. :func:`build_stall_report`
walks every unfinished WG and records *what it is waiting for and
where it is stuck*, machine-readably:

- the WG state and whether it still holds CU residency,
- the waiting condition (address, expected value, exclusive hint),
- where the condition is registered (SyncMon condition cache, CP
  spilled table, or nowhere — a busy-waiting policy),
- how many cycles the WG has spent in its current state.

:func:`classify_stagnation` is the watchdog's deadlock-vs-livelock
verdict: livelock means the machine keeps executing instructions
(progress events) without any condition ever advancing — e.g. polling
loops that burn ALU cycles — whereas deadlock means nothing executes at
all (busy-wait atomics execute no compute and are invisible to the
progress counter by design).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.gpu import GPU
    from repro.gpu.workgroup import WorkGroup


def _condition_home(gpu: "GPU", wg: "WorkGroup") -> str:
    """Where the WG's waiting condition is tracked, if anywhere."""
    cond = wg.cond
    if cond is None:
        return "none"
    entry = gpu.syncmon._find(cond)
    if entry is not None and wg.wg_id in entry.waiters:
        return "syncmon"
    spilled = gpu.cp.spilled.get((cond.addr, cond.expected))
    if spilled and wg.wg_id in spilled:
        return "cp-spilled"
    return "unregistered"


def build_stall_report(gpu: "GPU") -> List[Dict[str, Any]]:
    """Per-WG stall entries for every unfinished WG, in wg_id order."""
    from repro.gpu.workgroup import WGState  # local import (cycle)

    now = gpu.env.now
    report: List[Dict[str, Any]] = []
    for wg in gpu.wgs:
        if wg.state is WGState.DONE:
            continue
        cond = wg.cond
        report.append({
            "wg_id": wg.wg_id,
            "kernel": wg.kernel.name,
            "state": wg.state.value,
            "resident": wg.resident,
            "cu": wg.cu.cu_id if wg.cu is not None else None,
            "cycles_in_state": now - wg._state_since,
            "condition": (
                {
                    "addr": cond.addr,
                    "expected": cond.expected,
                    "exclusive": cond.exclusive,
                    "current_value": gpu.store.read(cond.addr),
                    "tracked_by": _condition_home(gpu, wg),
                }
                if cond is not None
                else None
            ),
            "wait_episodes": wg.wait_episodes,
            "context_switches": wg.context_switches,
        })
    return report


def classify_stagnation(progress_stalled: bool) -> str:
    """The watchdog verdict: no progress events at all is a deadlock;
    progress events without condition advancement is a livelock."""
    return "deadlock" if progress_stalled else "livelock"


def diagnosis_signature(
    diagnosis: Optional[Dict[str, Any]],
) -> Optional[Dict[str, Any]]:
    """The stable identity of a watchdog diagnosis for replay/shrink
    comparison: the verdict kind only. Cycle counts, WG ids and stall
    reports all legitimately change as a failing scenario is minimized,
    but a deadlock must still reproduce as a deadlock (and a livelock as
    a livelock) for the repro to be the *same* failure."""
    if not diagnosis:
        return None
    return {"kind": diagnosis.get("kind")}


def summarize_stalls(report: List[Dict[str, Any]]) -> str:
    """One-line human rendering of a stall report (for error messages)."""
    if not report:
        return "no unfinished WGs"
    by_state: Dict[str, int] = {}
    waiting_addrs = set()
    evicted = 0
    for entry in report:
        by_state[entry["state"]] = by_state.get(entry["state"], 0) + 1
        if entry["condition"] is not None:
            waiting_addrs.add(entry["condition"]["addr"])
        if not entry["resident"]:
            evicted += 1
    states = ", ".join(f"{n} {s}" for s, n in sorted(by_state.items()))
    return (
        f"{len(report)} unfinished WGs ({states}); "
        f"{len(waiting_addrs)} distinct wait addresses; "
        f"{evicted} without CU residency"
    )

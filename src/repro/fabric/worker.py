"""Fabric worker: claim a lease, execute the cell, commit, repeat.

A worker is a plain process pointed at a fabric directory (``python -m
repro.fabric.worker --dir DIR --name w0``) — the supervisor spawns them
locally, but nothing here assumes a shared machine, only a shared
filesystem. The loop:

1. read ``sweep.json`` and refuse to run if its code fingerprint does
   not match this worker's own code (a recovered worker from an old
   deploy must not commit stale results);
2. scan cells in sweep order; claim the first one that has no result,
   no settled failure, and no lease (``O_EXCL`` — exactly one winner);
3. execute the cell through the standard single-cell entrypoint
   (:func:`repro.experiments.matrix.execute_cell`): same
   ``REPRO_CELL_TIMEOUT``/``REPRO_CELL_RETRIES`` budgets, fault plans,
   sanitizer and ``REPRO_EXEC_LOG`` accounting as any matrix cell,
   with a heartbeat thread bumping the lease mtime throughout;
4. commit the result — exactly once via the hard-link protocol — into
   the fabric results directory *and* the shared
   :class:`~repro.experiments.cache.ResultCache`, then release the
   lease. A worker that was stalled long enough for the coordinator to
   steal its lease discards its result instead (``commit.lost``): the
   cell's new owner is authoritative.

Worker death at ANY point of this loop is safe: an unreleased lease
expires by mtime and is re-leased; a half-written commit can never be
observed (hard-link is all-or-nothing); a half-appended journal line is
skipped by readers.
"""

from __future__ import annotations

import os
import sys
import time
from typing import Any, Dict, List, Optional

from repro.errors import ConfigError
from repro.experiments.cache import (
    code_fingerprint, default_cache, result_to_payload,
)
from repro.experiments.matrix import (
    RunRequest, execute_cell, resolve_cell_retries, resolve_cell_timeout,
)
from repro.fabric.lease import FabricDir, HeartbeatThread, Lease

#: exit codes (distinct so the supervisor can tell them apart)
EXIT_OK = 0
EXIT_NO_SWEEP = 2
EXIT_FINGERPRINT = 3


class Worker:
    """One claim/execute/commit loop over a fabric directory."""

    def __init__(self, root: os.PathLike, name: str,
                 poll_interval: float = 0.05,
                 sweep_wait: float = 30.0):
        self.dir = FabricDir(root)
        self.name = name
        self.poll_interval = poll_interval
        self.sweep_wait = sweep_wait
        self.cells: List[Dict[str, Any]] = []
        self.ttl = 5.0
        self.cell_timeout: Optional[float] = None
        self.retries = 2
        self.cache = default_cache()
        self.committed = 0

    # -- setup ----------------------------------------------------------
    def load_sweep(self) -> int:
        """Adopt the published sweep; 0 on success, else an exit code."""
        deadline = time.monotonic() + self.sweep_wait
        document = None
        while time.monotonic() < deadline:
            document = self.dir.read_sweep()
            if document is not None:
                break
            if self.dir.stopped() is not None:
                return EXIT_OK
            time.sleep(self.poll_interval)
        if document is None:
            print(f"[{self.name}] no sweep.json under {self.dir.root}",
                  file=sys.stderr)
            return EXIT_NO_SWEEP
        if document.get("fingerprint") != code_fingerprint():
            # stale worker (old code) must not poison the sweep
            print(f"[{self.name}] code fingerprint mismatch: sweep "
                  f"{document.get('fingerprint')} != local "
                  f"{code_fingerprint()}", file=sys.stderr)
            return EXIT_FINGERPRINT
        self.cells = list(document.get("cells", []))
        self.ttl = float(document.get("ttl", 5.0))
        self.cell_timeout = resolve_cell_timeout(
            document.get("cell_timeout"))
        self.retries = resolve_cell_retries(document.get("retries"))
        return EXIT_OK

    # -- loop -----------------------------------------------------------
    def _claimable(self, key: str) -> bool:
        if self.dir.has_result(key):
            return False
        if self.dir.failure_settled(key, self.retries):
            return False
        # live (or expired-but-not-yet-stolen) leases are skipped;
        # only the coordinator removes expired leases, so two workers
        # never disagree about who may re-claim a dead worker's cell
        if self.dir.lease_age(key) is not None:
            return False
        return True

    def _next_cell(self) -> Optional[Lease]:
        for cell in self.cells:
            key = cell["key"]
            if not self._claimable(key):
                continue
            lease = self.dir.claim(key, self.name, self.ttl)
            if lease is not None:
                return lease
        return None

    def _settled(self) -> bool:
        return all(
            self.dir.has_result(cell["key"])
            or self.dir.failure_settled(cell["key"], self.retries)
            for cell in self.cells
        )

    def _spec_for(self, key: str) -> Dict[str, Any]:
        for cell in self.cells:
            if cell["key"] == key:
                return cell["spec"]
        raise ConfigError(f"lease {key} names no sweep cell")

    def run_cell(self, lease: Lease) -> None:
        """Execute one leased cell and commit/record the outcome."""
        self.dir.append_event("lease.grant", key=lease.key,
                              worker=self.name)
        request = RunRequest.from_spec(self._spec_for(lease.key))
        with HeartbeatThread(lease, interval=self.ttl / 4.0):
            result, failure = execute_cell(request, self.cell_timeout)
        if result is not None:
            if not self.dir.owns(lease):
                # stalled past our TTL: the coordinator re-leased the
                # cell, its new owner is authoritative — discard
                self.dir.append_event("commit.lost", key=lease.key,
                                      worker=self.name, reason="lease-lost")
            elif self.dir.commit_result(lease.key,
                                        result_to_payload(result)):
                self.committed += 1
                self.dir.append_commit(lease.key, self.name)
                self.dir.append_event("cell.commit", key=lease.key,
                                      worker=self.name)
                self._mirror_to_cache(request, result)
            else:
                self.dir.append_event("commit.lost", key=lease.key,
                                      worker=self.name, reason="duplicate")
        else:
            attempts = self.dir.record_failure(lease.key, failure)
            self.dir.append_event(
                "cell.fail", key=lease.key, worker=self.name,
                attempts=attempts,
                type=failure.get("type"),
                classification=failure.get("classification"))
        released = self.dir.release(lease)
        self.dir.append_event("lease.release", key=lease.key,
                              worker=self.name, owned=released)

    def _mirror_to_cache(self, request: RunRequest, result) -> None:
        """Best-effort mirror into the shared result cache (the fabric
        results directory stays authoritative; cache I/O must never
        fail a committed cell)."""
        if self.cache is None:
            return
        try:
            self.cache.put(self.cache.key_for(request.spec()), result)
        except Exception:
            pass

    def run(self) -> int:
        status = self.load_sweep()
        if status != EXIT_OK or not self.cells:
            return status
        self.dir.append_event("worker.start", worker=self.name,
                              pid=os.getpid())
        lease = None
        try:
            while True:
                if self.dir.stopped() is not None:
                    break
                lease = self._next_cell()
                if lease is not None:
                    self.run_cell(lease)
                    lease = None
                    continue
                if self._settled():
                    break
                time.sleep(self.poll_interval)
        finally:
            if lease is not None:
                self.dir.release(lease)
            self.dir.append_event("worker.exit", worker=self.name,
                                  pid=os.getpid(),
                                  committed=self.committed)
        return EXIT_OK


def main(argv: Optional[List[str]] = None) -> int:
    import argparse
    import signal

    parser = argparse.ArgumentParser(
        prog="python -m repro.fabric.worker",
        description="fabric worker loop: claim leases from a shared "
                    "fabric directory and execute sweep cells")
    parser.add_argument("--dir", required=True,
                        help="the sweep's fabric directory")
    parser.add_argument("--name", default=f"w{os.getpid()}",
                        help="worker name (lease records, journals)")
    parser.add_argument("--poll", type=float, default=0.05,
                        help="idle poll interval, seconds")
    parser.add_argument("--sweep-wait", type=float, default=30.0,
                        help="seconds to wait for sweep.json to appear")
    opts = parser.parse_args(argv)

    def _term(_signum, _frame):
        raise SystemExit(EXIT_OK)

    signal.signal(signal.SIGTERM, _term)
    worker = Worker(opts.dir, opts.name, poll_interval=opts.poll,
                    sweep_wait=opts.sweep_wait)
    return worker.run()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""The fabric's shared on-disk protocol: leases, commits, event log.

One sweep lives in one *fabric directory* (shared filesystem is the
only transport, which is what makes workers remote-ready):

``sweep.json``
    the coordinator's published sweep: schema version, code
    fingerprint, ordered cell specs, execution knobs. Workers refuse a
    sweep whose fingerprint does not match their own code.
``leases/<cell_key>.json``
    one versioned lease record per claimed cell (``LEASE_VERSION``,
    like the bundle schema). Claimed with ``O_CREAT|O_EXCL`` — exactly
    one claimant wins. The owner heartbeats by bumping the file's mtime
    through the fd it claimed with, so a lease stolen out from under a
    stalled worker is never refreshed by mistake (the orphaned inode
    soaks up the late utimes). A lease whose mtime is older than its
    TTL is *expired*; only the coordinator removes expired leases
    (a steal). A torn lease record — the claimant died mid-write — is
    skipped like a torn manifest entry: its mtime still drives expiry,
    it simply names no owner.
``results/<cell_key>.json``
    committed cell results, same ``{"result", "key", "digest"}`` layout
    as result-cache entries. Committed by hard-linking a fsynced temp
    file into place: ``os.link`` fails with ``EEXIST`` for every
    committer but the first, which is the exactly-once invariant.
``failures/<cell_key>.json``
    structured failure record + attempt count for cells whose
    simulation failed (deterministic failures are never retried;
    environmental ones are, up to the sweep's retry budget).
``events.log`` / ``commits.log``
    append-only (``O_APPEND``) journals of worker-side events and
    commits. Readers skip a torn final line (a writer died mid-append).
``STOP``
    written by the coordinator on completion, abort, or SIGTERM;
    workers exit when they see it.
"""

from __future__ import annotations

import errno
import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.durability import vfs
from repro.errors import ConfigError

#: bump when the lease-record layout changes (versioned like the
#: repro-bundle schema); readers ignore records from other versions
LEASE_VERSION = 1

#: bump when the sweep document layout changes
SWEEP_VERSION = 1

#: fabric root override (default: ``<checkpoint dir>/fabric``)
FABRIC_DIR_ENV = "REPRO_FABRIC_DIR"

#: mtime slop tolerated before declaring a lease expired (seconds)
FABRIC_SKEW_ENV = "REPRO_FABRIC_SKEW"


def default_fabric_root() -> Path:
    env = os.environ.get(FABRIC_DIR_ENV)
    if env:
        return Path(env)
    from repro.recovery.manifest import default_checkpoint_dir

    return default_checkpoint_dir() / "fabric"


def fabric_skew_slop() -> float:
    """Extra lease age tolerated beyond the TTL before expiry.

    Heartbeats are mtimes on a shared filesystem: coarse timestamp
    granularity (1-2s on some NFS/FAT stacks) and clock skew between
    the stat()-ing coordinator and the utime()-ing worker both make a
    live lease *look* older than it is. Stealing a live lease is the
    one protocol error that can double-execute a cell, so expiry errs
    late by this slop. Default 0.25s — far below the chaos drill's
    stall margin (TTL 1s, stalls 2.5s), far above same-box clock
    noise; raise it via ``REPRO_FABRIC_SKEW`` on skewed fleets."""
    env = os.environ.get(FABRIC_SKEW_ENV)
    if not env:
        return 0.25
    try:
        slop = float(env)
    except ValueError:
        raise ConfigError(
            f"{FABRIC_SKEW_ENV} must be a number of seconds, got {env!r}")
    return max(0.0, slop)


def _write_atomic_json(path: Path, document: Dict[str, Any]) -> None:
    """temp file + fsync + rename through the durability gateway, same
    discipline as the manifest (serialize first, bounded retries on
    transient faults, temp never leaked)."""
    text = json.dumps(document, sort_keys=True)
    path.parent.mkdir(parents=True, exist_ok=True)
    vfs.write_atomic_text(path, text)


def read_json_tolerant(path: Path) -> Optional[Dict[str, Any]]:
    """The parsed document, or None for missing/torn/non-dict files."""
    try:
        document = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    return document if isinstance(document, dict) else None


class LeaseLost(Exception):
    """The worker's lease was stolen (expired while it was stalled);
    its result must not be committed."""


@dataclass
class Lease:
    """A successfully claimed lease: the owner's handle on one cell."""

    key: str
    worker: str
    token: str
    ttl: float
    path: Path
    #: fd the lease was claimed with; heartbeats utime *this* so a
    #: stolen-and-reclaimed lease file is never refreshed by the old owner
    fd: int

    def heartbeat(self) -> None:
        try:
            vfs.vutime(self.fd)
        except OSError:
            pass

    def close(self) -> None:
        try:
            vfs.vclose(self.fd)
        except OSError:
            pass


class HeartbeatThread:
    """Background mtime bumper for one held lease. Touches nothing but
    the lease fd, so it cannot perturb the simulation the main thread
    is running."""

    def __init__(self, lease: Lease, interval: float):
        self.lease = lease
        self.interval = max(0.05, interval)
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"lease-heartbeat-{lease.key[:8]}",
            daemon=True)

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.lease.heartbeat()

    def __enter__(self) -> "HeartbeatThread":
        self._thread.start()
        return self

    def __exit__(self, *_exc) -> bool:
        self._stop.set()
        self._thread.join(timeout=5)
        return False


class FabricDir:
    """One sweep's shared fabric directory (see module docstring)."""

    def __init__(self, root: os.PathLike):
        self.root = Path(root)
        self.leases = self.root / "leases"
        self.results = self.root / "results"
        self.failures = self.root / "failures"
        self.sweep_path = self.root / "sweep.json"
        self.events_path = self.root / "events.log"
        self.commits_path = self.root / "commits.log"
        self.stop_path = self.root / "STOP"

    def init(self) -> None:
        for directory in (self.root, self.leases, self.results,
                          self.failures):
            directory.mkdir(parents=True, exist_ok=True)

    # -- sweep document -------------------------------------------------
    def publish_sweep(self, document: Dict[str, Any]) -> None:
        document = dict(document, version=SWEEP_VERSION)
        _write_atomic_json(self.sweep_path, document)

    def read_sweep(self) -> Optional[Dict[str, Any]]:
        document = read_json_tolerant(self.sweep_path)
        if document is None or document.get("version") != SWEEP_VERSION:
            return None
        return document

    # -- leases ---------------------------------------------------------
    def lease_path(self, key: str) -> Path:
        return self.leases / f"{key}.json"

    def claim(self, key: str, worker: str, ttl: float) -> Optional[Lease]:
        """Claim the lease on ``key`` for ``worker``; None if held.

        ``O_CREAT|O_EXCL`` guarantees exactly one winner per lease file
        lifetime; the written record is the versioned lease schema."""
        path = self.lease_path(key)
        token = f"{worker}:{os.getpid()}:{time.monotonic_ns()}"
        try:
            fd = vfs.vopen(path, os.O_CREAT | os.O_EXCL | os.O_RDWR)
        except FileExistsError:
            return None
        record = {
            "version": LEASE_VERSION,
            "key": key,
            "worker": worker,
            "pid": os.getpid(),
            "token": token,
            "granted_at": time.time(),
            "ttl": ttl,
        }
        try:
            data = json.dumps(record, sort_keys=True).encode()
            offset = 0
            while offset < len(data):
                offset += vfs.vwrite(fd, data[offset:])
            vfs.vfsync(fd)
        except OSError:
            pass  # a torn record still expires by mtime
        return Lease(key=key, worker=worker, token=token, ttl=ttl,
                     path=path, fd=fd)

    def read_lease(self, key: str) -> Optional[Dict[str, Any]]:
        """The lease record, or None for absent/torn/foreign-version
        records (a torn record names no owner but still holds the
        cell until its mtime expires)."""
        record = read_json_tolerant(self.lease_path(key))
        if record is None or record.get("version") != LEASE_VERSION:
            return None
        return record

    def lease_age(self, key: str) -> Optional[float]:
        """Seconds since the lease was last heartbeat; None if absent."""
        try:
            return max(0.0, time.time() - self.lease_path(key).stat().st_mtime)
        except OSError:
            return None

    def lease_expired(self, key: str, default_ttl: float) -> bool:
        """True once the lease's heartbeat age exceeds TTL *plus* the
        :func:`fabric_skew_slop` — coarse mtime granularity and clock
        skew between hosts must never get a live lease stolen (a steal
        of a live lease is the one path to double execution)."""
        age = self.lease_age(key)
        if age is None:
            return False
        record = self.read_lease(key)
        ttl = default_ttl
        if record is not None and isinstance(record.get("ttl"), (int, float)):
            ttl = float(record["ttl"])
        return age > ttl + fabric_skew_slop()

    def owns(self, lease: Lease) -> bool:
        record = self.read_lease(lease.key)
        return record is not None and record.get("token") == lease.token

    def release(self, lease: Lease) -> bool:
        """Drop a held lease; refuses to unlink a lease that was stolen
        and re-claimed by someone else. Returns True when removed."""
        removed = False
        if self.owns(lease):
            try:
                vfs.vunlink(lease.path)
                removed = True
            except OSError:
                pass
        lease.close()
        return removed

    def steal(self, key: str) -> bool:
        """Remove an (expired) lease so the cell can be re-claimed.
        Unlink is atomic: when several parties race, exactly one
        observes the removal. Coordinator-only by protocol."""
        try:
            vfs.vunlink(self.lease_path(key))
            return True
        except OSError:
            return False

    def live_leases(self) -> List[str]:
        if not self.leases.is_dir():
            return []
        return sorted(p.stem for p in self.leases.glob("*.json"))

    # -- results --------------------------------------------------------
    def result_path(self, key: str) -> Path:
        return self.results / f"{key}.json"

    def has_result(self, key: str) -> bool:
        return self.result_path(key).exists()

    def commit_result(self, key: str, payload: Dict[str, Any]) -> bool:
        """Exactly-once commit of one cell result.

        The document (same layout + digest as a result-cache entry) is
        fsynced to a temp file, then *hard-linked* into place —
        ``os.link`` raises ``EEXIST`` for every committer but the
        first, so two workers racing the same cell can never tear or
        duplicate the committed entry. Returns False for the losers."""
        from repro.experiments.cache import payload_digest

        path = self.result_path(key)
        if path.exists():
            return False
        document = {"result": payload, "key": key,
                    "digest": payload_digest(payload)}
        data = json.dumps(document, sort_keys=True).encode()
        if vfs.current_gateway() is not None:
            tmp = path.with_name(f".{path.name}.tmp")
        else:
            tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        retries = vfs.resolve_io_retries()
        backoff = vfs.resolve_io_backoff()
        attempt = 0
        try:
            while True:
                try:
                    fd = vfs.vopen(tmp,
                                   os.O_CREAT | os.O_TRUNC | os.O_WRONLY)
                    try:
                        offset = 0
                        while offset < len(data):
                            offset += vfs.vwrite(fd, data[offset:])
                        vfs.vfsync(fd)
                    finally:
                        vfs.vclose(fd)
                    break
                except OSError as exc:
                    # transient faults get the bounded-retry treatment
                    # of write_atomic_text: losing a commit to one EIO
                    # would burn the whole cell's simulation time
                    if (exc.errno not in (errno.EINTR, errno.EIO)
                            or attempt >= retries):
                        raise
                    attempt += 1
                    vfs.incr_stat(
                        "durability.retry."
                        + ("eintr" if exc.errno == errno.EINTR else "eio"))
                    if backoff:
                        time.sleep(backoff * (2 ** (attempt - 1)))
            try:
                vfs.vlink(tmp, path)
                return True
            except FileExistsError:
                return False
        finally:
            try:
                vfs.vunlink(tmp, missing_ok=True)
            except OSError:
                vfs.incr_stat("durability.fabric.tmp_cleanup_errors")

    def read_result(self, key: str) -> Optional[Dict[str, Any]]:
        """The committed document (caller verifies the digest)."""
        return read_json_tolerant(self.result_path(key))

    def quarantine_result(self, key: str) -> Optional[Path]:
        """Move a corrupt committed result aside (evidence survives,
        the cell becomes pending again)."""
        path = self.result_path(key)
        dest = self.root / "quarantine" / path.name
        dest.parent.mkdir(parents=True, exist_ok=True)
        try:
            path.replace(dest)
            return dest
        except OSError:
            return None

    # -- failures -------------------------------------------------------
    def failure_path(self, key: str) -> Path:
        return self.failures / f"{key}.json"

    def read_failure(self, key: str) -> Optional[Dict[str, Any]]:
        return read_json_tolerant(self.failure_path(key))

    def record_failure(self, key: str, failure: Dict[str, Any]) -> int:
        """Persist one failed attempt; returns the new attempt count.
        Only the lease owner executes a cell, so attempts never race."""
        previous = self.read_failure(key)
        attempts = (previous.get("attempts", 0) if previous else 0) + 1
        _write_atomic_json(self.failure_path(key), {
            "version": LEASE_VERSION,
            "key": key,
            "attempts": attempts,
            "failure": failure,
        })
        return attempts

    def failure_settled(self, key: str, retries: int) -> bool:
        """True when the cell's failure is final: deterministic (same
        seed would fail identically) or out of environmental retries."""
        record = self.read_failure(key)
        if record is None:
            return False
        failure = record.get("failure") or {}
        if failure.get("classification") == "deterministic":
            return True
        return record.get("attempts", 0) > retries

    # -- journals -------------------------------------------------------
    def append_event(self, event: str, **fields: Any) -> None:
        record = dict(fields, ev=event, t=round(time.time(), 6))
        line = json.dumps(record, sort_keys=True) + "\n"
        try:
            vfs.append_text(self.events_path, line)
        except OSError:
            pass  # journals are observability, never worth a crash

    def read_events(self, offset: int = 0) -> Tuple[int, List[Dict[str, Any]]]:
        """Events appended since ``offset``; returns (new_offset, events).

        Only complete lines are consumed — a torn final line (writer
        died mid-append) stays unconsumed until its writer... never
        finishes it, at which point it is permanently skipped; the
        journal is observability, not the source of truth."""
        try:
            with open(self.events_path, "rb") as fh:
                fh.seek(offset)
                data = fh.read()
        except OSError:
            return offset, []
        end = data.rfind(b"\n")
        if end < 0:
            return offset, []
        out = []
        for line in data[:end + 1].splitlines():
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict):
                out.append(record)
        return offset + end + 1, out

    def append_commit(self, key: str, worker: str) -> None:
        line = f"{key}\t{worker}\t{os.getpid()}\n"
        try:
            vfs.append_text(self.commits_path, line)
        except OSError:
            pass

    def read_commits(self) -> List[Tuple[str, str]]:
        """(cell_key, worker) per committed cell, journal order."""
        try:
            text = self.commits_path.read_text()
        except OSError:
            return []
        out = []
        for line in text.splitlines():
            parts = line.split("\t")
            if len(parts) == 3:
                out.append((parts[0], parts[1]))
        return out

    # -- lifecycle ------------------------------------------------------
    def write_stop(self, reason: str) -> None:
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            self.stop_path.write_text(reason + "\n")
        except OSError:
            pass

    def stopped(self) -> Optional[str]:
        try:
            return self.stop_path.read_text().strip()
        except OSError:
            return None

    def clear_stop(self) -> None:
        self.stop_path.unlink(missing_ok=True)


def iter_fabric_dirs(root: Optional[os.PathLike] = None) -> Iterator[FabricDir]:
    """Every sweep fabric directory under ``root`` (for ``fabric
    status``)."""
    root = Path(root) if root is not None else default_fabric_root()
    if not root.is_dir():
        return
    for path in sorted(root.iterdir()):
        if path.is_dir() and (path / "sweep.json").exists():
            yield FabricDir(path)

"""Local worker fleet supervision: spawn, respawn, circuit-break.

The supervisor owns N worker *slots*. Each slot runs ``python -m
repro.fabric.worker`` pointed at the sweep's fabric directory, with
stdout/stderr captured to ``workers/<name>.log``. The policy:

- a slot whose process exits cleanly (``EXIT_OK``) after the sweep
  settled is simply done;
- a slot whose process dies (signal, nonzero exit) is respawned with
  exponential backoff (``backoff_base * 2**consecutive_failures``,
  capped), because worker death is an expected event in this design;
- a slot that keeps dying *without committing anything in between*
  trips its crash-loop circuit breaker after
  ``circuit_threshold`` consecutive unproductive deaths and stops
  being respawned — a worker crashing on the same cell forever must
  not burn the machine. Progress (any new commit attributed to the
  slot's worker name) resets the count.

The supervisor never talks to workers except by signal; all sweep
state flows through the fabric directory, so replacing this module
with an ssh/k8s spawner changes nothing else.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.fabric.lease import FabricDir


@dataclass
class WorkerSlot:
    """One supervised worker position in the fleet."""

    name: str
    proc: Optional[subprocess.Popen] = None
    log: Optional[Any] = None
    spawns: int = 0
    consecutive_failures: int = 0
    respawn_at: Optional[float] = None
    circuit_open: bool = False
    #: commits attributed to this slot's worker name at last death,
    #: to distinguish productive deaths from crash loops
    commits_at_death: int = 0
    exited_clean: bool = False
    last_exit: Optional[int] = None

    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None


class Supervisor:
    """Spawn/respawn the local fleet for one fabric directory."""

    def __init__(
        self,
        fabric_dir: FabricDir,
        workers: int,
        poll_interval: float = 0.05,
        backoff_base: float = 0.25,
        backoff_cap: float = 5.0,
        circuit_threshold: int = 5,
        extra_env: Optional[Dict[str, str]] = None,
    ):
        self.dir = fabric_dir
        self.poll_interval = poll_interval
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.circuit_threshold = circuit_threshold
        self.extra_env = dict(extra_env or {})
        self.slots = [WorkerSlot(name=f"w{i}") for i in range(workers)]
        self.log_dir = self.dir.root / "workers"

    # -- spawning -------------------------------------------------------
    def _spawn(self, slot: WorkerSlot) -> None:
        self.log_dir.mkdir(parents=True, exist_ok=True)
        if slot.log is None:
            slot.log = open(self.log_dir / f"{slot.name}.log", "ab")
        env = dict(os.environ, **self.extra_env)
        src_root = Path(__file__).resolve().parents[2]
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (str(src_root), env.get("PYTHONPATH")) if p)
        slot.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.fabric.worker",
             "--dir", str(self.dir.root),
             "--name", slot.name,
             "--poll", str(self.poll_interval)],
            env=env, stdout=slot.log, stderr=slot.log,
        )
        slot.spawns += 1
        slot.respawn_at = None

    def start_all(self) -> None:
        for slot in self.slots:
            self._spawn(slot)

    # -- monitoring -----------------------------------------------------
    def poll(self, commits_by_worker: Dict[str, int],
             sweep_done: bool = False) -> List[Tuple[str, str, Any]]:
        """One supervision pass; returns ``(event, worker, detail)``
        tuples (worker deaths, respawns, circuit trips) for the
        coordinator's stats and trace stream."""
        events: List[Tuple[str, str, Any]] = []
        now = time.monotonic()
        for slot in self.slots:
            if slot.circuit_open or slot.exited_clean:
                continue
            if slot.proc is not None and slot.proc.poll() is not None:
                code = slot.proc.returncode
                slot.last_exit = code
                slot.proc = None
                if code == 0:
                    slot.exited_clean = True
                    continue
                commits = commits_by_worker.get(slot.name, 0)
                if commits > slot.commits_at_death:
                    slot.consecutive_failures = 1  # productive: reset
                else:
                    slot.consecutive_failures += 1
                slot.commits_at_death = commits
                events.append(("worker.death", slot.name, code))
                if slot.consecutive_failures >= self.circuit_threshold:
                    slot.circuit_open = True
                    events.append(("worker.circuit_open", slot.name,
                                   slot.consecutive_failures))
                    continue
                backoff = min(
                    self.backoff_cap,
                    self.backoff_base
                    * (2 ** (slot.consecutive_failures - 1)))
                slot.respawn_at = now + backoff
            if (slot.proc is None and slot.respawn_at is not None
                    and now >= slot.respawn_at and not sweep_done):
                self._spawn(slot)
                events.append(("worker.respawn", slot.name, slot.spawns))
        return events

    def live_workers(self) -> int:
        return sum(1 for slot in self.slots if slot.alive())

    def pending_respawns(self) -> int:
        return sum(1 for slot in self.slots
                   if slot.proc is None and slot.respawn_at is not None
                   and not slot.circuit_open)

    def all_circuits_open(self) -> bool:
        return bool(self.slots) and all(
            slot.circuit_open for slot in self.slots)

    def fleet_dead(self) -> bool:
        """No live worker, none scheduled to come back."""
        return self.live_workers() == 0 and self.pending_respawns() == 0

    # -- chaos hooks ----------------------------------------------------
    def signal_slot(self, index: int, signum: int) -> bool:
        """Deliver ``signum`` to one live worker (the chaos drill's
        kill/stall lever). Returns True when delivered."""
        slot = self.slots[index % len(self.slots)]
        if not slot.alive():
            return False
        try:
            slot.proc.send_signal(signum)
            return True
        except OSError:
            return False

    def live_slot_indices(self) -> List[int]:
        return [i for i, slot in enumerate(self.slots) if slot.alive()]

    # -- shutdown -------------------------------------------------------
    def shutdown(self, grace: float = 5.0) -> None:
        """SIGTERM the fleet, SIGKILL stragglers after ``grace``."""
        for slot in self.slots:
            if slot.alive():
                try:
                    slot.proc.terminate()
                except OSError:
                    pass
        deadline = time.monotonic() + grace
        for slot in self.slots:
            if slot.proc is None:
                continue
            remaining = max(0.0, deadline - time.monotonic())
            try:
                slot.proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                try:
                    slot.proc.send_signal(signal.SIGCONT)  # un-stall first
                    slot.proc.kill()
                    slot.proc.wait(timeout=5)
                except (OSError, subprocess.TimeoutExpired):
                    pass
        for slot in self.slots:
            if slot.log is not None:
                try:
                    slot.log.close()
                except OSError:
                    pass
                slot.log = None

    def kill_all(self) -> None:
        """Immediate SIGKILL (the coordinator's signal handler — must
        not block)."""
        for slot in self.slots:
            if slot.alive():
                try:
                    slot.proc.send_signal(signal.SIGCONT)
                    slot.proc.kill()
                except OSError:
                    pass

"""Seeded chaos drill: crash, stall and interrupt a real fabric sweep.

The drill runs ONE sweep (five paper workloads plus the ``_KILL``
stress drill) through three phases that share a checkpoint manifest,
fabric directory, result cache and ``REPRO_EXEC_LOG``:

A. **baseline** — the sweep runs in-process (``run_matrix``, jobs=1,
   no cache): the bit-identity reference.
B. **coordinator interrupt** — the sweep starts on a real worker fleet
   in a child process and the *coordinator itself* is SIGTERMed after
   the first commit. Asserts the conventional ``128+SIGTERM`` exit and
   that the manifest/fabric directory are left resumable.
C. **chaos resume** — the same sweep resumes in-process under a seeded
   fault schedule driven from the coordinator's tick hook:

   - one lease-holding worker is **SIGKILLed** mid-cell,
   - another is **SIGSTOPped** past the lease TTL (a stall or network
     partition: the coordinator must steal its lease, and the stalled
     worker must *lose* its late commit when SIGCONT revives it),
   - the ``_KILL`` drill SIGKILLs whichever worker builds it
     (one-shot, sentinel-gated — the retry on a fresh worker passes).

After completion the drill asserts, on the combined history of B + C:

- zero failed cells;
- every cell bit-identical to phase A over ``RESULT_FIELDS``;
- ``commits.log`` names every cell exactly once (exactly-once commit);
- execution-log duplicates bounded by the recorded deaths + steals +
  the in-flight cells abandoned at the phase-B interrupt (duplicate
  work happens only where a fault forced it);
- lease expiries/steals and worker deaths visible as ``fabric.*``
  stats AND as trace instants in the exported Chrome trace.

Faults are scheduled by commit-count triggers and a seeded RNG picks
the victims, so a drill failure reproduces with the same ``--seed``.
"""

from __future__ import annotations

import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from random import Random
from typing import Any, Callable, Dict, List, Optional

from repro.core.policies import named_policy
from repro.experiments.cache import RESULT_FIELDS, ResultCache
from repro.experiments.matrix import RunRequest, run_matrix
from repro.experiments.runner import QUICK_SCALE
from repro.fabric.coordinator import Coordinator, run_fabric
from repro.fabric.lease import FabricDir
from repro.fabric.supervisor import Supervisor
from repro.recovery.manifest import cell_key, list_manifests

#: ``_KILL`` is deliberately LAST: phase B is interrupted after the
#: first commit, so the sentinel-armed kill reliably fires in phase C
DRILL_BENCHES = ("SPM_G", "FAM_G", "TB_LG", "SLM_G", "SPM_L", "_KILL")

_SRC = str(Path(__file__).resolve().parents[2])

#: the phase-B child: a real coordinator run that exits 128+signum on
#: interrupt, exactly like ``python -m repro fabric run``
_CHILD = """\
import sys

from repro.experiments.matrix import SweepInterrupted
from repro.fabric.chaos import drill_requests
from repro.fabric.coordinator import run_fabric

try:
    run_fabric(drill_requests(), workers=int(sys.argv[1]),
               ttl=float(sys.argv[2]), checkpoint_root=sys.argv[3],
               fabric_root=sys.argv[4], trace=False)
except SweepInterrupted as exc:
    sys.exit(128 + exc.signum)
"""


def drill_requests() -> List[RunRequest]:
    """The drill sweep: slow enough that faults land mid-cell (the
    quick-scale cells finish in tens of milliseconds, far inside the
    lease TTL; these take seconds)."""
    scenario = QUICK_SCALE.scaled(label="fabric-drill", iterations=4,
                                  episodes=16)
    return [
        RunRequest(bench, named_policy("awg"), scenario, validate=False)
        for bench in DRILL_BENCHES
    ]


class ChaosSchedule:
    """Deterministic fault injector driven from the coordinator tick.

    Triggers are commit counts (phase-stable across machines); victim
    selection among the eligible (lease-holding, live) workers is the
    only randomness, and it is seeded."""

    def __init__(self, seed: int = 0, ttl: float = 1.0,
                 kill_after: int = 1, stall_after: int = 2,
                 stall_for: Optional[float] = None):
        self.rng = Random(seed)
        self.ttl = ttl
        self.kill_after = kill_after
        self.stall_after = stall_after
        #: stall comfortably past the TTL so the steal is guaranteed
        self.stall_for = stall_for if stall_for is not None else ttl * 2.5
        self.killed = False
        self.stalled: Optional[int] = None
        self.stall_started: Optional[float] = None
        self.resumed = False

    def _leased_slots(self, coordinator: Coordinator,
                      supervisor: Supervisor) -> List[int]:
        """Live slots currently holding a lease (killing an idle worker
        proves nothing). Matched by the lease record's *pid*, not just
        the worker name — a resumed sweep leaves stale leases behind
        that name the previous fleet's identically-named slots."""
        holders = set()
        for key in coordinator.dir.live_leases():
            record = coordinator.dir.read_lease(key)
            if record and record.get("worker"):
                holders.add((record["worker"], record.get("pid")))
        return [
            i for i in supervisor.live_slot_indices()
            if (supervisor.slots[i].name,
                supervisor.slots[i].proc.pid) in holders
        ]

    def __call__(self, coordinator: Coordinator,
                 supervisor: Supervisor) -> None:
        commits = len(coordinator.dir.read_commits())
        if not self.killed and commits >= self.kill_after:
            slots = self._leased_slots(coordinator, supervisor)
            if slots:
                victim = self.rng.choice(slots)
                if supervisor.signal_slot(victim, signal.SIGKILL):
                    self.killed = True
            return
        if self.killed and self.stalled is None \
                and commits >= self.stall_after:
            slots = self._leased_slots(coordinator, supervisor)
            if slots:
                victim = self.rng.choice(slots)
                if supervisor.signal_slot(victim, signal.SIGSTOP):
                    self.stalled = victim
                    self.stall_started = time.monotonic()
            return
        if (self.stalled is not None and not self.resumed
                and time.monotonic() - self.stall_started
                >= self.stall_for):
            supervisor.signal_slot(self.stalled, signal.SIGCONT)
            self.resumed = True


@dataclass
class DrillReport:
    """What the drill observed; ``ok`` means every assertion held."""

    workers: int
    seed: int
    problems: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    stats: Dict[str, int] = field(default_factory=dict)
    exec_counts: Dict[str, int] = field(default_factory=dict)
    duration: float = 0.0
    scratch: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.problems

    def render(self) -> str:
        lines = [
            f"fabric chaos drill: {'PASS' if self.ok else 'FAIL'} "
            f"(workers={self.workers}, seed={self.seed}, "
            f"{self.duration:.1f}s)"
        ]
        for note in self.notes:
            lines.append(f"  {note}")
        for key in sorted(self.stats):
            if self.stats[key]:
                lines.append(f"  {key} = {self.stats[key]}")
        if self.exec_counts:
            executed = ", ".join(f"{b}x{n}" for b, n in
                                 sorted(self.exec_counts.items()))
            lines.append(f"  executions: {executed}")
        for problem in self.problems:
            lines.append(f"  PROBLEM: {problem}")
        if self.problems and self.scratch:
            lines.append(f"  evidence kept under {self.scratch}")
        return "\n".join(lines)


def _exec_counts(log_path: Path) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    if not log_path.exists():
        return counts
    for line in log_path.read_text().splitlines():
        bench = line.split("\t")[0]
        counts[bench] = counts.get(bench, 0) + 1
    return counts


def _result_fields(result) -> Dict[str, Any]:
    return {name: getattr(result, name) for name in RESULT_FIELDS}


def run_drill(
    workers: int = 4,
    seed: int = 0,
    ttl: float = 1.0,
    scratch: Optional[os.PathLike] = None,
    out: Optional[Callable[[str], None]] = None,
) -> DrillReport:
    """Run the three-phase chaos drill; see the module docstring.

    Scratch state (checkpoints, fabric dir, cache, logs) lives under a
    temp directory, removed on success and kept as evidence on failure
    (or always kept when ``scratch`` names a directory explicitly)."""
    say = out or (lambda _line: None)
    keep_scratch = scratch is not None
    root = Path(scratch) if scratch else \
        Path(tempfile.mkdtemp(prefix="repro-fabric-drill-"))
    root.mkdir(parents=True, exist_ok=True)
    ckpt_root = root / "ckpt"
    fabric_root = root / "fabric"
    cache_dir = root / "cache"
    exec_log = root / "exec.log"
    sentinel = root / "kill-me"
    report = DrillReport(workers=workers, seed=seed, scratch=str(root))
    started = time.monotonic()

    requests = drill_requests()
    keys = [cell_key(req.spec()) for req in requests]

    # -- phase A: in-process baseline (no cache, no exec log) -----------
    say(f"phase A: baseline run_matrix jobs=1 ({len(requests)} cells)")
    baseline = run_matrix(requests, jobs=1, cache=None, checkpoint=False)
    if baseline.errors:
        report.problems.append(
            f"baseline sweep failed: {baseline.errors[0].traceback}")
        return _finish(report, started, root, keep_scratch)

    # -- phase B: fleet sweep, coordinator SIGTERMed mid-flight ---------
    say(f"phase B: fleet of {workers}, SIGTERM the coordinator after "
        f"the first commit")
    child_env = dict(
        os.environ,
        PYTHONPATH=os.pathsep.join(
            p for p in (_SRC, os.environ.get("PYTHONPATH")) if p),
        REPRO_EXEC_LOG=str(exec_log),
        REPRO_CACHE_DIR=str(cache_dir),
    )
    child_env.pop("REPRO_NO_CACHE", None)
    child_env.pop("REPRO_STRESS_KILL", None)
    script = root / "child_fabric.py"
    script.write_text(_CHILD)
    fabric_dir: Optional[FabricDir] = None
    interrupted = False
    for _attempt in range(3):
        child = subprocess.Popen(
            [sys.executable, str(script), str(workers), str(ttl),
             str(ckpt_root), str(fabric_root)],
            env=child_env, cwd=root,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        )
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline and child.poll() is None:
            dirs = list(fabric_root.glob("*/commits.log"))
            if dirs and dirs[0].read_text().count("\n") >= 1:
                fabric_dir = FabricDir(dirs[0].parent)
                break
            time.sleep(0.02)
        child.send_signal(signal.SIGTERM)
        _stdout, stderr = child.communicate(timeout=300)
        if child.returncode == 128 + signal.SIGTERM:
            interrupted = True
            break
        # the fleet outran the signal (or died): reset and retry
        report.notes.append(
            f"phase B attempt exited rc={child.returncode}; retrying")
        for path in (ckpt_root, fabric_root, cache_dir):
            shutil.rmtree(path, ignore_errors=True)
        exec_log.unlink(missing_ok=True)
        fabric_dir = None
    if not interrupted:
        report.problems.append(
            f"coordinator SIGTERM never produced exit "
            f"{128 + signal.SIGTERM} (last rc {child.returncode}, "
            f"stderr: {stderr.decode(errors='replace')[-500:]})")
        return _finish(report, started, root, keep_scratch)
    manifests = list_manifests(ckpt_root)
    if len(manifests) != 1:
        report.problems.append(
            f"interrupted sweep left {len(manifests)} manifests, "
            f"expected 1 (resumable)")
        return _finish(report, started, root, keep_scratch)
    report.notes.append(
        f"phase B: interrupted with {manifests[0]['completed']} cells "
        f"checkpointed, exit {child.returncode}")

    # -- phase C: resume under the seeded fault schedule ----------------
    kill_key = cell_key(
        next(r for r in requests if r.benchmark == "_KILL").spec())
    arm_kill = fabric_dir is None or not fabric_dir.has_result(kill_key)
    extra_env = {
        "REPRO_EXEC_LOG": str(exec_log),
        "REPRO_CACHE_DIR": str(cache_dir),
    }
    if arm_kill:
        sentinel.write_text("")
        extra_env["REPRO_STRESS_KILL"] = str(sentinel)
    say("phase C: resume with seeded SIGKILL + SIGSTOP stall"
        + (" + _KILL sentinel" if arm_kill else ""))
    chaos = ChaosSchedule(seed=seed, ttl=ttl)
    result = run_fabric(
        requests, workers=workers, ttl=ttl,
        checkpoint_root=ckpt_root, fabric_root=fabric_root,
        cache=ResultCache(cache_dir),
        on_tick=chaos,
        supervisor_kw={"extra_env": extra_env},
    )
    report.stats = dict(result.stats)
    report.exec_counts = _exec_counts(exec_log)
    say(result.summary())

    # -- assertions -----------------------------------------------------
    if result.errors:
        report.problems.append(
            f"{len(result.errors)} cells failed; first: "
            f"{result.errors[0].traceback[-300:]}")
    for index in range(len(requests)):
        try:
            if _result_fields(result[index]) != \
                    _result_fields(baseline[index]):
                report.problems.append(
                    f"cell {index} ({requests[index].benchmark}) "
                    f"diverged from the jobs=1 baseline")
        except Exception as exc:  # CellError on failed cells
            report.problems.append(
                f"cell {index} unreadable: {type(exc).__name__}")
    committed = [key for key, _worker in
                 FabricDir(fabric_root / result.sweep_key).read_commits()]
    if sorted(committed) != sorted(set(committed)):
        report.problems.append("commits.log records a cell twice "
                               "(exactly-once commit violated)")
    if set(committed) != set(keys):
        report.problems.append(
            f"commits.log covers {len(set(committed))}/{len(keys)} "
            f"cells")
    if not chaos.killed:
        report.problems.append("chaos SIGKILL never fired")
    if chaos.stalled is None:
        report.problems.append("chaos SIGSTOP stall never engaged")
    if arm_kill and sentinel.exists():
        report.problems.append("_KILL sentinel never consumed")
    deaths = report.stats.get("fabric.worker.deaths", 0)
    steals = report.stats.get("fabric.lease.stolen", 0)
    min_deaths = 1 + (1 if arm_kill else 0)
    if deaths < min_deaths:
        report.problems.append(
            f"expected >= {min_deaths} worker deaths, stats saw "
            f"{deaths}")
    if steals < 1:
        report.problems.append("no lease steal recorded despite a "
                               "SIGKILLed lease holder")
    extra = sum(max(0, n - 1) for n in report.exec_counts.values())
    missing = [b for b in DRILL_BENCHES if b not in report.exec_counts]
    if missing:
        report.problems.append(
            f"cells never executed by the fleet: {missing}")
    allowed = deaths + steals + workers  # + cells abandoned at SIGTERM
    if extra > allowed:
        report.problems.append(
            f"{extra} duplicate executions exceed the {allowed} "
            f"explainable by deaths/steals/interrupt")
    if result.trace is None:
        report.problems.append("no trace exported")
    else:
        names = {e.get("name") for e in result.trace["traceEvents"]}
        for required in ("lease.stolen", "worker.death", "cell.commit"):
            if required not in names:
                report.problems.append(
                    f"trace instants missing {required!r}")
    if list_manifests(ckpt_root):
        report.problems.append(
            "completed sweep left its manifest behind")
    return _finish(report, started, root, keep_scratch)


def _finish(report: DrillReport, started: float, root: Path,
            keep_scratch: bool) -> DrillReport:
    report.duration = time.monotonic() - started
    if report.ok and not keep_scratch:
        shutil.rmtree(root, ignore_errors=True)
        report.scratch = None
    return report


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.fabric.chaos",
        description="seeded kill/stall/interrupt drill for the sweep "
                    "fabric")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--ttl", type=float, default=1.0)
    parser.add_argument("--scratch", default=None,
                        help="scratch directory (default: temp dir, "
                             "removed on success)")
    opts = parser.parse_args(argv)
    report = run_drill(workers=opts.workers, seed=opts.seed,
                       ttl=opts.ttl, scratch=opts.scratch, out=print)
    print(report.render())
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Lease-based distributed sweep fabric.

``repro.fabric`` turns a checkpointed :func:`~repro.experiments.matrix`
sweep into a crash-tolerant *fleet*: a coordinator owns the PR 5
checkpoint manifest as the single source of truth, leases its cells to
N workers (local subprocesses today, any machine sharing the fabric
directory tomorrow), and treats worker death as nothing more than an
un-leased cell. The moving parts:

:mod:`repro.fabric.lease`
    the shared on-disk protocol — versioned lease records claimed with
    ``O_EXCL``, heartbeats as lease-file mtime bumps, exactly-once
    result commits via hard-link, and an append-only event log whose
    torn tail is skipped like a torn manifest entry.
:mod:`repro.fabric.coordinator`
    :func:`~repro.fabric.coordinator.run_fabric` — publishes the sweep,
    folds committed results into the manifest, expires and re-leases
    dead workers' cells, emits ``fabric.*`` stats and trace instants,
    and survives its own SIGTERM (the sweep resumes).
:mod:`repro.fabric.worker`
    the claim → execute → commit → release loop (also a standalone
    ``python -m repro.fabric.worker`` entry point for remote workers).
:mod:`repro.fabric.supervisor`
    spawns and respawns the local worker fleet with exponential backoff
    and a crash-loop circuit breaker.
:mod:`repro.fabric.chaos`
    the seeded drill behind ``make fabric-smoke``: kills, stalls and
    SIGTERMs a live sweep and asserts completion, bit-identity and the
    zero-duplicate-commit invariant.

Guarantees (drilled by :mod:`repro.fabric.chaos`):

- any worker can be SIGKILLed, hung or partitioned mid-cell and the
  sweep still completes, bit-identical to a ``jobs=1`` in-process run;
- every cell's result is committed exactly once (``O_EXCL`` hard-link
  commit + lease-ownership check) no matter how many workers raced it;
- the coordinator itself can be SIGTERMed and re-run; the manifest
  resumes the sweep from the last committed cell.
"""

from repro.fabric.coordinator import FabricResult, run_fabric
from repro.fabric.lease import LEASE_VERSION, FabricDir, LeaseLost

__all__ = ["FabricDir", "FabricResult", "LEASE_VERSION", "LeaseLost",
           "run_fabric"]

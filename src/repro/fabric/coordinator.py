"""Fabric coordinator: the manifest owner that leases cells to a fleet.

:func:`run_fabric` is the distributed counterpart of
:func:`~repro.experiments.matrix.run_matrix`: same request list, same
bit-identical results, but the cells execute on N worker processes
coordinated purely through a shared directory. The coordinator:

- opens the PR 5 :class:`~repro.recovery.manifest.SweepCheckpoint` as
  the *single source of truth* — completed cells from a previous
  (crashed) coordinator are adopted and never re-executed, the current
  lease table is mirrored into the manifest document on every flush,
  and torn/stale entries are discarded exactly as in a single-process
  resume;
- publishes ``sweep.json`` (specs + code fingerprint + budgets) for
  workers to adopt;
- folds worker-committed results from ``results/`` into the manifest
  (digest-checked; corrupt commits are quarantined and re-leased);
- expires leases whose heartbeat went stale and *steals* them so the
  cell can be re-leased — worker death is just an un-leased cell;
- runs the result-cache integrity check over a dead worker's cells
  (the ``cache --verify`` machinery) so a worker that died mid-write
  can never leave a poisoned shared-cache entry behind;
- emits every fleet event as ``fabric.*`` stats and trace instants
  (lease grants/expiries/steals, commits, worker deaths/respawns)
  through the PR 4 tracer on a wall-clock timebase;
- on SIGINT/SIGTERM flushes the manifest, stops the fleet and raises
  :class:`~repro.experiments.matrix.SweepInterrupted` — the CLI exits
  128+signum and an identical re-invocation resumes the sweep.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.errors import ConfigError, ReproError
from repro.experiments.cache import (
    ResultCache, default_cache, payload_digest, result_from_payload,
)
from repro.experiments.matrix import (
    Cell, MatrixError, RunRequest, SweepInterrupted, resolve_cell_retries,
    resolve_cell_timeout,
)
from repro.experiments.runner import RunResult
from repro.fabric.lease import (
    FabricDir, LEASE_VERSION, default_fabric_root,
)
from repro.fabric.supervisor import Supervisor
from repro.recovery.manifest import SweepCheckpoint, cell_key
from repro.trace.config import TraceConfig
from repro.trace.tracer import Tracer


class FabricError(ReproError):
    """The fleet can no longer make progress (every worker slot's
    crash-loop circuit breaker is open)."""


class _WallClock:
    """Engine-shaped clock for the tracer: ``now`` is microseconds
    since the coordinator started (fleet events live in wall time,
    not simulated cycles)."""

    def __init__(self) -> None:
        self._start = time.monotonic()

    @property
    def now(self) -> int:
        return int((time.monotonic() - self._start) * 1e6)


@dataclass
class FabricResult:
    """Outcome of one fabric sweep, shaped like a MatrixResult."""

    cells: List[Cell]
    workers: int
    sweep_key: str
    stats: Dict[str, int]
    duration: float
    resumed: int = 0
    trace: Optional[Dict[str, Any]] = None

    def __len__(self) -> int:
        return len(self.cells)

    def __getitem__(self, index: int) -> RunResult:
        from repro.experiments.matrix import CellError

        cell = self.cells[index]
        if cell.failure is not None:
            raise CellError(cell.request, cell.error, failure=cell.failure)
        return cell.result

    @property
    def errors(self) -> List[MatrixError]:
        return [MatrixError(i, c.request, c.error, c.failure)
                for i, c in enumerate(self.cells)
                if c.failure is not None]

    @property
    def ok(self) -> bool:
        return not self.errors

    def summary(self) -> str:
        done = sum(1 for c in self.cells if c.result is not None)
        line = (f"fabric: {len(self.cells)} cells, {done} completed, "
                f"{len(self.errors)} failed, workers={self.workers}, "
                f"{self.duration:.1f}s")
        if self.resumed:
            line += f", {self.resumed} resumed from checkpoint"
        interesting = ("fabric.lease.expired", "fabric.lease.stolen",
                       "fabric.worker.deaths", "fabric.worker.respawns",
                       "fabric.commits.lost")
        extras = [f"{k.split('fabric.')[1]}={self.stats[k]}"
                  for k in interesting if self.stats.get(k)]
        if extras:
            line += " [" + ", ".join(extras) + "]"
        return line


#: journal event -> stats counter. The coordinator derives ALL
#: ``fabric.*`` stats (and the matching trace instants) by ingesting
#: ``events.log`` — its own events included — so a resumed coordinator
#: reports the sweep's *whole* history, not just its own tenure.
_EVENT_STATS = {
    "lease.grant": "fabric.lease.granted",
    "lease.release": "fabric.lease.released",
    "lease.expired": "fabric.lease.expired",
    "lease.stolen": "fabric.lease.stolen",
    "cell.commit": "fabric.cells.committed",
    "cell.fail": "fabric.cells.failed_attempts",
    "commit.lost": "fabric.commits.lost",
    "worker.start": "fabric.worker.starts",
    "worker.exit": "fabric.worker.exits",
    "worker.death": "fabric.worker.deaths",
    "worker.respawn": "fabric.worker.respawns",
    "worker.circuit_open": "fabric.worker.circuits_open",
    "result.quarantined": "fabric.results.quarantined",
    "cache.quarantined": "fabric.cache.quarantined",
}


class Coordinator:
    """Owns one sweep: manifest, lease table, result ingestion."""

    def __init__(
        self,
        requests: Sequence[RunRequest],
        ttl: float = 5.0,
        poll_interval: float = 0.05,
        cell_timeout: Optional[float] = None,
        retries: Optional[int] = None,
        checkpoint_root: Union[None, str, os.PathLike] = None,
        fabric_root: Union[None, str, os.PathLike] = None,
        cache: Union[ResultCache, str, None] = "default",
        trace: bool = True,
    ):
        if any(req.keep_gpu for req in requests):
            raise ConfigError(
                "keep_gpu=True cells cannot run on the fabric (a GPU "
                "object never crosses a process boundary)")
        self.requests = list(requests)
        self.ttl = ttl
        self.poll_interval = poll_interval
        self.cell_timeout = resolve_cell_timeout(cell_timeout)
        self.retries = resolve_cell_retries(retries)
        self.cache = default_cache() if cache == "default" else cache

        # unique cells in request order (same dedupe rule as run_matrix)
        self.specs: List[Dict[str, Any]] = []
        self.keys: List[str] = []
        self._key_of_request: List[str] = []
        seen = set()
        for req in self.requests:
            spec = req.spec()
            key = cell_key(spec)
            self._key_of_request.append(key)
            if key not in seen:
                seen.add(key)
                self.specs.append(spec)
                self.keys.append(key)
        self._request_of_key = {
            key: RunRequest.from_spec(spec)
            for key, spec in zip(self.keys, self.specs)
        }

        self.ckpt = SweepCheckpoint.open(self.specs, root=checkpoint_root)
        self.sweep_key = self.ckpt.path.stem
        root = (Path(fabric_root) if fabric_root is not None
                else default_fabric_root())
        self.dir = FabricDir(root / self.sweep_key)

        self.stats: Dict[str, int] = {}
        self.clock = _WallClock()
        self.tracer = None
        if trace:
            self.tracer = Tracer(
                self.clock, TraceConfig(categories=("fabric",)))
        self._events_offset = 0
        self._started = time.monotonic()
        #: wall deadline per leased key before it counts as expired is
        #: carried by the lease record itself; this tracks what we
        #: already announced so expiry instants fire once per lease
        self._known_leases: Dict[str, Optional[str]] = {}

    # -- observability --------------------------------------------------
    def _bump(self, stat: str, n: int = 1) -> None:
        self.stats[stat] = self.stats.get(stat, 0) + n

    def _instant(self, name: str, **args: Any) -> None:
        if self.tracer is not None:
            self.tracer.instant("fabric", name, track="fabric", **args)

    # -- lifecycle ------------------------------------------------------
    def prepare(self) -> None:
        """Publish the sweep and adopt prior progress (manifest +
        shared cache), so workers only ever see missing cells."""
        self.dir.init()
        self.dir.clear_stop()
        self._bump("fabric.cells.total", len(self.keys))
        self._bump("fabric.cells.resumed", self.ckpt.resumed)
        # a) manifest-completed cells -> results/ so workers skip them
        for key in self.keys:
            if key in self.ckpt.completed and not self.dir.has_result(key):
                self.dir.commit_result(key, self.ckpt.completed[key])
        # b) shared-cache hits -> manifest + results/ (mirrored exactly
        #    like run_matrix mirrors cache hits into the checkpoint)
        if self.cache is not None:
            for key, spec in zip(self.keys, self.specs):
                if key in self.ckpt.completed:
                    continue
                hit = self.cache.get(self.cache.key_for(spec))
                if hit is not None:
                    self._bump("fabric.cache.hits")
                    self.ckpt.record(key, hit)
                    self.dir.commit_result(key, self.ckpt.completed[key])
        self.dir.publish_sweep({
            "sweep_key": self.sweep_key,
            "fingerprint": self.ckpt.fingerprint,
            "lease_version": LEASE_VERSION,
            "ttl": self.ttl,
            "cell_timeout": self.cell_timeout,
            "retries": self.retries,
            "cells": [{"key": key, "spec": spec}
                      for key, spec in zip(self.keys, self.specs)],
        })
        self._instant("sweep.start", cells=len(self.keys),
                      resumed=self.ckpt.resumed)

    # -- one supervision tick -------------------------------------------
    def poll(self) -> bool:
        """Ingest journals, fold results, expire leases; True = done."""
        self._ingest_events()
        self._ingest_results()
        self._expire_leases()
        self._mirror_lease_table()
        return self.done()

    def _ingest_events(self) -> None:
        self._events_offset, events = self.dir.read_events(
            self._events_offset)
        for record in events:
            name = record.get("ev")
            if not isinstance(name, str):
                continue
            args = {k: v for k, v in record.items()
                    if k not in ("ev", "t")}
            stat = _EVENT_STATS.get(name)
            if stat is not None:
                self._bump(stat)
            self._instant(name, **args)

    def _ingest_results(self) -> None:
        for key in self.keys:
            if key in self.ckpt.completed or not self.dir.has_result(key):
                continue
            document = self.dir.read_result(key)
            problem = self._check_document(key, document)
            if problem is not None:
                dest = self.dir.quarantine_result(key)
                self.dir.append_event("result.quarantined", key=key,
                                      problem=problem,
                                      quarantined_to=str(dest))
                continue
            self.ckpt.record(key, result_from_payload(document["result"]))
            self._bump("fabric.cells.recorded")

    @staticmethod
    def _check_document(key: str,
                        document: Optional[Dict[str, Any]]) -> Optional[str]:
        """None when a committed result is intact (digest + identity +
        reconstructs), else the problem — the same checks ``cache
        --verify`` applies to shared-store entries."""
        if document is None or "result" not in document:
            return "unreadable or empty commit"
        if document.get("key") != key:
            return "embedded key does not match cell"
        if document.get("digest") != payload_digest(document["result"]):
            return "payload digest mismatch (torn commit)"
        try:
            result_from_payload(document["result"])
        except (TypeError, ValueError) as exc:
            return f"payload does not reconstruct a RunResult ({exc})"
        return None

    def _expire_leases(self) -> None:
        for key in self.dir.live_leases():
            record = self.dir.read_lease(key)
            worker = record.get("worker") if record else None
            if key not in self._known_leases:
                self._known_leases[key] = worker
            if not self.dir.lease_expired(key, self.ttl):
                continue
            self.dir.append_event(
                "lease.expired", key=key, worker=worker,
                age=round(self.dir.lease_age(key) or 0.0, 3))
            if self.dir.steal(key):
                self.dir.append_event("lease.stolen", key=key,
                                      worker=worker)
                self._known_leases.pop(key, None)
                self._verify_recovered(key)

    def _verify_recovered(self, key: str) -> None:
        """Integrity layer for a dead/stalled worker's cell: its
        partial fabric commit is digest-checked by ``_ingest_results``;
        here the *shared cache* entry it may have been writing gets the
        ``cache --verify`` treatment so a torn mirror is quarantined
        before any other sweep can read it."""
        if self.cache is None:
            return
        spec = dict(zip(self.keys, self.specs)).get(key)
        if spec is None:
            return
        path = self.cache._path(self.cache.key_for(spec))
        if not path.exists():
            return
        problem = self.cache._check_entry(path)
        if problem is None:
            return
        dest = self.cache.root / "quarantine" / path.name
        dest.parent.mkdir(parents=True, exist_ok=True)
        try:
            path.replace(dest)
        except OSError:
            return
        self.dir.append_event("cache.quarantined", key=key,
                              problem=problem)

    def _mirror_lease_table(self) -> None:
        """Keep the manifest's ``fabric`` record current: the lease
        table (who holds what, how stale) plus fleet counters. Flushed
        with the next ``record``/``flush`` like any manifest change."""
        table = {}
        for key in self.dir.live_leases():
            record = self.dir.read_lease(key) or {}
            table[key] = {
                "worker": record.get("worker"),
                "age": round(self.dir.lease_age(key) or 0.0, 3),
                "ttl": record.get("ttl", self.ttl),
            }
        self.ckpt.extra = {
            "lease_version": LEASE_VERSION,
            "leases": table,
            "stats": dict(self.stats),
        }
        self.ckpt.mark_in_flight(list(table))

    def note_fleet_event(self, event: str, worker: str, detail: Any) -> None:
        """Supervisor events (deaths, respawns, circuit trips) are
        journaled like worker events, then ingested into the same
        stats/trace stream — so they survive a coordinator restart."""
        self.dir.append_event(event, worker=worker, detail=detail)

    # -- termination ----------------------------------------------------
    def _settled(self, key: str) -> bool:
        if key in self.ckpt.completed:
            return True
        return self.dir.failure_settled(key, self.retries)

    def done(self) -> bool:
        return all(self._settled(key) for key in self.keys)

    def commits_by_worker(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for _key, worker in self.dir.read_commits():
            counts[worker] = counts.get(worker, 0) + 1
        return counts

    def interrupt(self, signum: int) -> None:
        """Signal-handler path: leave everything resumable, fast."""
        self.ckpt.flush(force=True)
        self.dir.write_stop(f"interrupted by signal {signum}")

    def finalize(self, workers: int) -> FabricResult:
        self.dir.write_stop("sweep settled")
        self._instant("sweep.done",
                      completed=len(self.ckpt.completed),
                      cells=len(self.keys))
        self._mirror_lease_table()
        failures = {
            key: (self.dir.read_failure(key) or {}).get("failure")
            for key in self.keys if key not in self.ckpt.completed
        }
        cells: List[Cell] = []
        for index, req in enumerate(self.requests):
            key = self._key_of_request[index]
            result = self.ckpt.get(key)
            if result is not None:
                # duplicates get their own stats dict (run_matrix rule)
                cells.append(Cell(self._request_of_key.get(key, req),
                                  result=result, from_cache=False))
            else:
                failure = failures.get(key) or {
                    "type": "FabricError",
                    "message": "cell never completed",
                    "traceback": "cell never completed",
                    "classification": "environmental",
                }
                cells.append(Cell(req, failure=failure))
        # end-of-sweep manifest policy matches run_matrix: complete
        # sweeps delete their manifest, partial ones flush for resume
        self.ckpt.extra = {}
        self.ckpt.complete()
        trace_doc = None
        if self.tracer is not None:
            self.tracer.finish()
            trace_doc = self.tracer.export_chrome(
                label=f"fabric {self.sweep_key}")
        return FabricResult(
            cells=cells,
            workers=workers,
            sweep_key=self.sweep_key,
            stats=dict(self.stats),
            duration=time.monotonic() - self._started,
            resumed=self.ckpt.resumed,
            trace=trace_doc,
        )


class _FabricSignals:
    """SIGINT/SIGTERM for the duration of one fabric run: flush the
    manifest, tell the fleet to stop, raise SweepInterrupted (the CLI
    maps it to exit 128+signum; the sweep resumes on re-invocation)."""

    _SIGNALS = (signal.SIGINT, signal.SIGTERM)

    def __init__(self, coordinator: Coordinator, supervisor: Supervisor):
        self.coordinator = coordinator
        self.supervisor = supervisor
        self._previous: Dict[int, Any] = {}

    def __enter__(self) -> "_FabricSignals":
        if threading.current_thread() is not threading.main_thread():
            return self

        def _fire(signum, _frame):
            self.coordinator.interrupt(signum)
            self.supervisor.kill_all()
            raise SweepInterrupted(signum)

        for signum in self._SIGNALS:
            self._previous[signum] = signal.signal(signum, _fire)
        return self

    def __exit__(self, *_exc) -> bool:
        for signum, previous in self._previous.items():
            signal.signal(signum, previous)
        return False


def run_fabric(
    requests: Sequence[RunRequest],
    workers: int = 2,
    ttl: float = 5.0,
    poll_interval: float = 0.05,
    cell_timeout: Optional[float] = None,
    retries: Optional[int] = None,
    checkpoint_root: Union[None, str, os.PathLike] = None,
    fabric_root: Union[None, str, os.PathLike] = None,
    cache: Union[ResultCache, str, None] = "default",
    trace: bool = True,
    on_tick: Optional[Callable[[Coordinator, Supervisor], None]] = None,
    supervisor_kw: Optional[Dict[str, Any]] = None,
) -> FabricResult:
    """Run a sweep on a leased worker fleet; the distributed
    ``run_matrix``.

    Results are bit-identical to ``run_matrix(requests, jobs=1)``
    (simulations are seeded and deterministic; the fabric only changes
    *where* cells run). ``ttl`` is the lease heartbeat budget: a worker
    silent for longer loses its cell. ``on_tick`` is the chaos drill's
    hook — called once per coordinator poll with live coordinator and
    supervisor handles."""
    workers = max(1, int(workers))
    coordinator = Coordinator(
        requests, ttl=ttl, poll_interval=poll_interval,
        cell_timeout=cell_timeout, retries=retries,
        checkpoint_root=checkpoint_root, fabric_root=fabric_root,
        cache=cache, trace=trace,
    )
    coordinator.prepare()
    supervisor = Supervisor(coordinator.dir, workers,
                            poll_interval=poll_interval,
                            **(supervisor_kw or {}))
    try:
        if not coordinator.done():
            with _FabricSignals(coordinator, supervisor):
                supervisor.start_all()
                while True:
                    done = coordinator.poll()
                    for event, name, detail in supervisor.poll(
                            coordinator.commits_by_worker(),
                            sweep_done=done):
                        coordinator.note_fleet_event(event, name, detail)
                    if done:
                        break
                    if on_tick is not None:
                        on_tick(coordinator, supervisor)
                    if supervisor.all_circuits_open():
                        coordinator.dir.write_stop("fleet crash-looped")
                        coordinator.ckpt.flush(force=True)
                        raise FabricError(
                            "every worker slot's crash-loop circuit "
                            "breaker is open; sweep aborted (manifest "
                            "flushed — fix the cause and re-run to "
                            "resume)")
                    time.sleep(poll_interval)
    finally:
        supervisor.shutdown()
    return coordinator.finalize(workers)
